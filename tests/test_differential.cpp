/**
 * @file
 * Differential tests for the hot-path data structures.
 *
 * The optimized SeqTable/DisTable index and tag paths (flat pre-sized
 * owner array, shift-based partial tags) are cross-checked against
 * naive reference models in `ref::` that keep the pre-optimization
 * semantics verbatim: hash maps probed per access, tag bits computed by
 * division.  Both models consume identical randomized streams (fixed
 * seeds) and must agree on every observable -- lookup results, conflict
 * and write counts -- at every step.
 *
 * The same file carries the property/fuzz suite for the predecoder's
 * block cache: randomized fixed-length blocks must decode to identical
 * branch footprints cold and cached, including across eviction/refill
 * of the direct-mapped cache, and decodeAt() must stay consistent with
 * the full-block decode.
 *
 * The competitor mechanisms bring two more pairs: the FDIP candidate
 * queue (power-of-two ring with a logical cap + dedup filter) against a
 * plain deque model, and the micro BTB (flat modulo-indexed ways, true
 * LRU) against a map model that recomputes set membership by scanning —
 * both over seeded random streams including non-power-of-two
 * geometries.
 */

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "frontend/micro_btb.h"
#include "isa/encoding.h"
#include "isa/predecoder.h"
#include "prefetch/dis_table.h"
#include "prefetch/fdip.h"
#include "prefetch/seq_table.h"
#include "workload/image.h"

namespace dcfb {
namespace ref {

/**
 * Pre-optimization SeqTable: same direct-mapped tagless bit table, but
 * the conflict instrumentation probes a hash map per write (the code
 * the flat owner array replaced).
 */
class SeqTable
{
  public:
    explicit SeqTable(std::size_t entries_)
        : entries(entries_), bits(entries_, true)
    {}

    bool get(Addr block_addr) const { return bits[index(block_addr)]; }

    void
    set(Addr block_addr, bool useful)
    {
        std::size_t i = index(block_addr);
        Addr owner = blockNumber(block_addr);
        auto [it, inserted] = lastOwner.try_emplace(i, owner);
        if (!inserted && it->second != owner) {
            ++conflicts;
            it->second = owner;
        }
        ++writes;
        bits[i] = useful;
    }

    std::uint8_t
    statusOfNextFour(Addr block_addr) const
    {
        std::uint8_t packed = 0;
        for (unsigned i = 0; i < 4; ++i) {
            if (get(block_addr + Addr{i + 1} * kBlockBytes))
                packed |= 1u << i;
        }
        return packed;
    }

    std::uint64_t conflicts = 0;
    std::uint64_t writes = 0;

  private:
    std::size_t
    index(Addr block_addr) const
    {
        return static_cast<std::size_t>(blockNumber(block_addr)) &
            (entries - 1);
    }

    std::size_t entries;
    std::vector<bool> bits;
    std::unordered_map<std::size_t, Addr> lastOwner;
};

/**
 * Pre-optimization DisTable: identical table, but the partial tag is
 * always the division form `blockNumber / entries` (the code the
 * power-of-two shift replaced).
 */
class DisTable
{
  public:
    explicit DisTable(const prefetch::DisTableConfig &config)
        : cfg(config), table(cfg.entries)
    {}

    void
    record(Addr block_addr, std::uint8_t offset)
    {
        Entry &e = table[index(block_addr)];
        e.valid = true;
        e.tag = tagOf(block_addr);
        e.offset = offset;
    }

    std::optional<std::uint8_t>
    lookup(Addr block_addr) const
    {
        const Entry &e = table[index(block_addr)];
        if (!e.valid)
            return std::nullopt;
        if (cfg.tagPolicy != prefetch::DisTagPolicy::Tagless &&
            e.tag != tagOf(block_addr)) {
            return std::nullopt;
        }
        return e.offset;
    }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint8_t offset = 0;
    };

    std::size_t
    index(Addr block_addr) const
    {
        return static_cast<std::size_t>(blockNumber(block_addr)) &
            (cfg.entries - 1);
    }

    std::uint64_t
    tagOf(Addr block_addr) const
    {
        std::uint64_t above = blockNumber(block_addr) / cfg.entries;
        switch (cfg.tagPolicy) {
          case prefetch::DisTagPolicy::Tagless: return 0;
          case prefetch::DisTagPolicy::Partial4: return above & 0xf;
          case prefetch::DisTagPolicy::Full: return above;
        }
        return 0;
    }

    prefetch::DisTableConfig cfg;
    std::vector<Entry> table;
};

/**
 * Reference FDIP candidate queue: a plain std::deque with an explicit
 * logical capacity, plus the same recently-accepted ring.  The
 * production FdipQueue sits on BoundedQueue's power-of-two ring with a
 * logical cap; this model has no ring arithmetic at all, so the two
 * only agree if the cap/wrap handling is exact for any (non-power-of-
 * two) capacity.
 */
class FdipQueue
{
  public:
    FdipQueue(unsigned entries, unsigned recent_entries)
        : cap(entries ? entries : 1),
          recent(recent_entries ? recent_entries : 1, kInvalidAddr)
    {}

    prefetch::FdipQueue::Push
    push(Addr block)
    {
        for (Addr r : recent) {
            if (r == block)
                return prefetch::FdipQueue::Push::Duplicate;
        }
        if (q.size() >= cap)
            return prefetch::FdipQueue::Push::Dropped;
        q.push_back(block);
        recent[recentPos] = block;
        recentPos = (recentPos + 1) % recent.size();
        return prefetch::FdipQueue::Push::Accepted;
    }

    bool empty() const { return q.empty(); }
    std::size_t size() const { return q.size(); }
    Addr front() const { return q.front(); }
    void pop() { q.pop_front(); }

  private:
    std::size_t cap;
    std::deque<Addr> q;
    std::vector<Addr> recent;
    std::size_t recentPos = 0;
};

/**
 * Reference micro BTB: entries live in one std::map keyed by PC; set
 * membership is recomputed per fill by scanning the whole map for PCs
 * that share the victim set.  Replacement uses the same rules as the
 * flat-way table (insert while the set is under-full, else evict the
 * strictly lowest age) — ages advance in lockstep with the production
 * table's ++tick, so LRU order must match exactly.
 */
class MicroBtb
{
  public:
    explicit MicroBtb(const frontend::MicroBtbConfig &config)
        : cfg(config), numSets(config.entries / config.assoc)
    {}

    const frontend::MicroBtbEntry *
    probe(Addr pc)
    {
        ++probes;
        auto it = table.find(pc);
        if (it == table.end()) {
            ++misses;
            return nullptr;
        }
        ++hits;
        it->second.age = ++clock_;
        return &it->second.payload;
    }

    bool contains(Addr pc) const { return table.count(pc) != 0; }

    frontend::MicroBtb::Evicted
    fill(Addr pc, Addr target, isa::InstrKind kind)
    {
        ++fills;
        auto it = table.find(pc);
        if (it != table.end()) {
            it->second.payload.target = target;
            it->second.payload.kind = kind;
            it->second.age = ++clock_;
            return {};
        }
        // Scan the whole map for the set's residents (naive on purpose).
        unsigned set = static_cast<unsigned>(pc % numSets);
        std::map<Addr, Entry>::iterator victim = table.end();
        unsigned occupancy = 0;
        for (auto e = table.begin(); e != table.end(); ++e) {
            if (static_cast<unsigned>(e->first % numSets) != set)
                continue;
            ++occupancy;
            if (victim == table.end() || e->second.age < victim->second.age)
                victim = e;
        }
        frontend::MicroBtb::Evicted ev;
        if (occupancy >= cfg.assoc) {
            ev.valid = true;
            ev.pc = victim->first;
            ++evicts;
            table.erase(victim);
        }
        table[pc] = Entry{{target, kind}, ++clock_};
        return ev;
    }

    std::uint64_t probes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t fills = 0;
    std::uint64_t evicts = 0;

  private:
    struct Entry
    {
        frontend::MicroBtbEntry payload;
        std::uint64_t age = 0;
    };

    frontend::MicroBtbConfig cfg;
    unsigned numSets;
    std::map<Addr, Entry> table;
    std::uint64_t clock_ = 0;
};

} // namespace ref

namespace {

class SeqTableDifferential : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(SeqTableDifferential, AgreesWithMapModelOnRandomStream)
{
    constexpr std::size_t kEntries = 64; // small: force heavy aliasing
    prefetch::SeqTable opt(kEntries);
    ref::SeqTable model(kEntries);

    Rng rng(GetParam());
    const Addr base = 0x40000;
    for (int op = 0; op < 20000; ++op) {
        // 8x more blocks than entries, so conflicts are common.
        Addr block = base + rng.below(kEntries * 8) * kBlockBytes;
        switch (rng.below(3)) {
          case 0:
            opt.set(block, rng.chance(0.5));
            // Mirror the draw: both models must see identical streams.
            model.set(block, opt.get(block));
            break;
          case 1:
            ASSERT_EQ(opt.get(block), model.get(block))
                << "get() diverged at op " << op;
            break;
          default:
            ASSERT_EQ(opt.statusOfNextFour(block),
                      model.statusOfNextFour(block))
                << "statusOfNextFour() diverged at op " << op;
            break;
        }
    }

    EXPECT_EQ(opt.stats().get("seqtable_conflicts"), model.conflicts);
    EXPECT_EQ(opt.stats().get("seqtable_writes"), model.writes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeqTableDifferential,
                         ::testing::Values(11, 22, 33, 44, 55));

struct DisCase
{
    std::size_t entries;
    prefetch::DisTagPolicy policy;
    std::uint64_t seed;
};

class DisTableDifferential : public ::testing::TestWithParam<DisCase>
{};

TEST_P(DisTableDifferential, AgreesWithDivisionModelOnRandomStream)
{
    const DisCase &c = GetParam();
    prefetch::DisTableConfig cfg;
    cfg.entries = c.entries;
    cfg.tagPolicy = c.policy;
    prefetch::DisTable opt(cfg);
    ref::DisTable model(cfg);

    Rng rng(c.seed);
    const Addr base = 0x40000;
    for (int op = 0; op < 20000; ++op) {
        // Span many multiples of the table size so partial tags alias.
        Addr block = base + rng.below(c.entries * 64) * kBlockBytes;
        if (rng.chance(0.4)) {
            auto offset = static_cast<std::uint8_t>(rng.below(16));
            opt.record(block, offset);
            model.record(block, offset);
        } else {
            ASSERT_EQ(opt.lookup(block), model.lookup(block))
                << "lookup() diverged at op " << op;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DisTableDifferential,
    ::testing::Values(
        // Power-of-two sizes take the shift path; the non-power-of-two
        // size keeps the division fallback -- both must match the
        // always-divide model.
        DisCase{64, prefetch::DisTagPolicy::Partial4, 101},
        DisCase{64, prefetch::DisTagPolicy::Tagless, 102},
        DisCase{64, prefetch::DisTagPolicy::Full, 103},
        DisCase{4096, prefetch::DisTagPolicy::Partial4, 104},
        DisCase{48, prefetch::DisTagPolicy::Partial4, 105},
        DisCase{48, prefetch::DisTagPolicy::Full, 106}));

// ---------------------------------------------------------------------
// FDIP candidate-queue differential.
// ---------------------------------------------------------------------

struct FdipQueueCase
{
    unsigned entries;
    unsigned recentEntries;
    std::uint64_t seed;
};

class FdipQueueDifferential
    : public ::testing::TestWithParam<FdipQueueCase>
{};

TEST_P(FdipQueueDifferential, AgreesWithDequeModelOnRandomStream)
{
    const FdipQueueCase &c = GetParam();
    prefetch::FdipQueue opt(c.entries, c.recentEntries);
    ref::FdipQueue model(c.entries, c.recentEntries);

    Rng rng(c.seed);
    const Addr base = 0x40000;
    // Mirrors the FTQ-append pattern: short runs of consecutive blocks
    // (a basic block's lines, in order) mixed with pops (issue slots)
    // from a pool small enough to hit the dedup ring constantly.
    for (int op = 0; op < 30000; ++op) {
        if (rng.chance(0.6)) {
            Addr first = base +
                rng.below(c.entries * 4) * kBlockBytes;
            Addr last = first + rng.below(3) * kBlockBytes;
            for (Addr b = first; b <= last; b += kBlockBytes) {
                ASSERT_EQ(opt.push(b), model.push(b))
                    << "push() diverged at op " << op;
            }
        } else {
            ASSERT_EQ(opt.empty(), model.empty())
                << "empty() diverged at op " << op;
            if (!opt.empty()) {
                ASSERT_EQ(opt.front(), model.front())
                    << "front() diverged at op " << op;
                opt.pop();
                model.pop();
            }
        }
        ASSERT_EQ(opt.size(), model.size())
            << "size() diverged at op " << op;
    }
    // Drain: the full FIFO order must match, not just the fronts the
    // random schedule happened to observe.
    while (!model.empty()) {
        ASSERT_FALSE(opt.empty());
        EXPECT_EQ(opt.front(), model.front());
        opt.pop();
        model.pop();
    }
    EXPECT_TRUE(opt.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FdipQueueDifferential,
    ::testing::Values(
        // The preset geometry is deliberately non-power-of-two (24/12);
        // the pow2 and degenerate single-entry shapes ride along.
        FdipQueueCase{24, 12, 201}, FdipQueueCase{24, 12, 202},
        FdipQueueCase{32, 8, 203}, FdipQueueCase{7, 3, 204},
        FdipQueueCase{1, 1, 205}, FdipQueueCase{5, 16, 206}));

// ---------------------------------------------------------------------
// Micro-BTB differential.
// ---------------------------------------------------------------------

struct MicroBtbCase
{
    unsigned entries;
    unsigned assoc;
    std::uint64_t seed;
};

class MicroBtbDifferential
    : public ::testing::TestWithParam<MicroBtbCase>
{};

TEST_P(MicroBtbDifferential, AgreesWithMapModelOnRandomStream)
{
    const MicroBtbCase &c = GetParam();
    frontend::MicroBtbConfig cfg;
    cfg.entries = c.entries;
    cfg.assoc = c.assoc;
    frontend::MicroBtb opt(cfg);
    ref::MicroBtb model(cfg);

    Rng rng(c.seed);
    const Addr base = 0x40000;
    // 6x more branch PCs than entries so sets stay full and every fill
    // must pick the same LRU victim in both models.
    const unsigned pool = c.entries * 6;
    for (int op = 0; op < 30000; ++op) {
        Addr pc = base + rng.below(pool) * kInstrBytes;
        switch (rng.below(3)) {
          case 0: {
            Addr target = base + rng.below(pool) * kInstrBytes;
            auto kind = rng.chance(0.5) ? isa::InstrKind::CondBranch
                                        : isa::InstrKind::Jump;
            frontend::MicroBtb::Evicted a = opt.fill(pc, target, kind);
            frontend::MicroBtb::Evicted b = model.fill(pc, target, kind);
            ASSERT_EQ(a.valid, b.valid)
                << "evict presence diverged at op " << op;
            if (a.valid) {
                ASSERT_EQ(a.pc, b.pc)
                    << "evict victim diverged at op " << op;
            }
            break;
          }
          case 1: {
            const frontend::MicroBtbEntry *a = opt.probe(pc);
            const frontend::MicroBtbEntry *b = model.probe(pc);
            ASSERT_EQ(a != nullptr, b != nullptr)
                << "probe() diverged at op " << op;
            if (a) {
                ASSERT_EQ(a->target, b->target) << "target at op " << op;
                ASSERT_EQ(a->kind, b->kind) << "kind at op " << op;
            }
            break;
          }
          default:
            ASSERT_EQ(opt.contains(pc), model.contains(pc))
                << "contains() diverged at op " << op;
            break;
        }
    }

    EXPECT_EQ(opt.stats().get("mbtb_probes"), model.probes);
    EXPECT_EQ(opt.stats().get("mbtb_hits"), model.hits);
    EXPECT_EQ(opt.stats().get("mbtb_misses"), model.misses);
    EXPECT_EQ(opt.stats().get("mbtb_fills"), model.fills);
    EXPECT_EQ(opt.stats().get("mbtb_evicts"), model.evicts);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MicroBtbDifferential,
    ::testing::Values(
        // 96/4 = 24 sets and 100/4 = 25 sets exercise the modulo index
        // that SetAssocCache's power-of-two mask cannot express.
        MicroBtbCase{96, 4, 301}, MicroBtbCase{100, 4, 302},
        MicroBtbCase{64, 4, 303}, MicroBtbCase{48, 3, 304},
        MicroBtbCase{12, 2, 305}, MicroBtbCase{6, 1, 306}));

// ---------------------------------------------------------------------
// Predecode-cache properties.
// ---------------------------------------------------------------------

using isa::DecodedInstr;
using isa::InstrKind;
using isa::PredecodedBranch;

bool
sameBranches(const std::vector<PredecodedBranch> &a,
             const std::vector<PredecodedBranch> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].byteOffset != b[i].byteOffset || a[i].kind != b[i].kind ||
            a[i].hasTarget != b[i].hasTarget ||
            a[i].target != b[i].target || a[i].pc != b[i].pc) {
            return false;
        }
    }
    return true;
}

/** Write one random fixed-length block at @p base; ~1/4 branch slots. */
void
writeRandomBlock(workload::ProgramImage &image, Addr base, Rng &rng)
{
    static const InstrKind kBranchKinds[] = {
        InstrKind::CondBranch, InstrKind::Jump,         InstrKind::Call,
        InstrKind::Return,     InstrKind::IndirectCall,
    };
    for (unsigned slot = 0; slot < kInstrPerBlock; ++slot) {
        Addr pc = base + slot * kInstrBytes;
        DecodedInstr di{InstrKind::Alu, false, kInvalidAddr};
        if (rng.chance(0.25)) {
            di.kind = kBranchKinds[rng.below(5)];
            if (isa::hasEncodedTarget(di.kind)) {
                di.hasTarget = true;
                std::int64_t delta =
                    static_cast<std::int64_t>(rng.below(1 << 12)) -
                    (1 << 11);
                di.target = static_cast<Addr>(
                    static_cast<std::int64_t>(pc) + delta * kInstrBytes);
            }
        }
        std::uint8_t buf[kInstrBytes];
        isa::writeWord(buf, isa::encodeInstr(pc, di));
        image.write(pc, buf, kInstrBytes);
    }
}

class PredecodeCacheProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(PredecodeCacheProperty, ColdAndCachedDecodesAreIdentical)
{
    Rng rng(GetParam());
    workload::ProgramImage image;
    constexpr unsigned kBlocks = 64;
    const Addr base = 0x40000;
    for (unsigned b = 0; b < kBlocks; ++b)
        writeRandomBlock(image, base + Addr{b} * kBlockBytes, rng);

    isa::Predecoder cached(image, /*variable_length=*/false);
    for (int round = 0; round < 3; ++round) {
        for (unsigned b = 0; b < kBlocks; ++b) {
            Addr block = base + Addr{b} * kBlockBytes;
            // A fresh predecoder per probe never hits its cache.
            isa::Predecoder cold(image, false);
            ASSERT_TRUE(sameBranches(cold.predecodeBlock(block),
                                     cached.predecodeBlock(block)))
                << "block " << b << " round " << round;
        }
    }
}

TEST_P(PredecodeCacheProperty, SurvivesEvictionAndRefill)
{
    Rng rng(GetParam() + 1000);
    workload::ProgramImage image;
    // Two blocks 1024 block-numbers apart alias onto the same entry of
    // the 256-entry direct-mapped cache, so decoding one evicts the
    // other.  (If the cache ever grows past 1024 entries these become
    // non-aliasing probes and the test degrades to the cold/cached
    // property above, still sound.)
    const Addr a = 0x40000;
    const Addr b = a + Addr{1024} * kBlockBytes;
    writeRandomBlock(image, a, rng);
    writeRandomBlock(image, b, rng);

    isa::Predecoder pd(image, false);
    auto first_a = pd.predecodeBlock(a);
    auto first_b = pd.predecodeBlock(b); // evicts a's entry
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(sameBranches(pd.predecodeBlock(a), first_a));
        ASSERT_TRUE(sameBranches(pd.predecodeBlock(b), first_b));
    }
}

TEST_P(PredecodeCacheProperty, DecodeAtMatchesFullBlockDecode)
{
    Rng rng(GetParam() + 2000);
    workload::ProgramImage image;
    const Addr block = 0x40000;
    writeRandomBlock(image, block, rng);

    isa::Predecoder pd(image, false);
    auto all = pd.predecodeBlock(block);
    std::vector<bool> is_branch_offset(kBlockBytes, false);
    for (const auto &br : all) {
        auto one = pd.decodeAt(block, br.byteOffset);
        ASSERT_EQ(one.size(), 1u);
        EXPECT_TRUE(sameBranches(one, {br}));
        is_branch_offset[br.byteOffset] = true;
    }
    for (unsigned off = 0; off < kBlockBytes; off += kInstrBytes) {
        if (!is_branch_offset[off])
            EXPECT_TRUE(pd.decodeAt(block, off).empty());
    }
}

TEST_P(PredecodeCacheProperty, UnmappedAndVariableLengthStayEmpty)
{
    Rng rng(GetParam() + 3000);
    workload::ProgramImage image;
    writeRandomBlock(image, 0x40000, rng);

    isa::Predecoder fl(image, false);
    EXPECT_TRUE(fl.predecodeBlock(0x99000).empty());
    EXPECT_TRUE(fl.predecodeBlock(0x99000).empty()); // cached miss too

    // VL mode has no full-block decode; the cache must not change that.
    isa::Predecoder vl(image, true);
    EXPECT_TRUE(vl.predecodeBlock(0x40000).empty());
    EXPECT_TRUE(vl.predecodeBlock(0x40000).empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredecodeCacheProperty,
                         ::testing::Values(7, 17, 27));

} // namespace
} // namespace dcfb
