/**
 * @file
 * System configuration and evaluated-design presets (Section VI).
 */

#ifndef DCFB_SIM_CONFIG_H
#define DCFB_SIM_CONFIG_H

#include <cstdint>
#include <memory>
#include <string>

#include "core/backend.h"
#include "frontend/micro_btb.h"
#include "frontend/shotgun_btb.h"
#include "mem/l1d.h"
#include "mem/l1i.h"
#include "mem/llc.h"
#include "mem/memory.h"
#include "noc/mesh.h"
#include "prefetch/confluence.h"
#include "prefetch/fdip.h"
#include "prefetch/sn4l_dis_btb.h"
#include "rt/faults.h"
#include "rt/invariants.h"
#include "workload/cfg.h"

namespace dcfb::sim {

/** The designs evaluated in the paper's figures. */
enum class Preset {
    Baseline,    //!< no instruction/BTB prefetcher
    NL,          //!< next-line
    N2L,
    N4L,
    N8L,
    N4LPlain,    //!< unselective N4L through the SN4L engine (Fig. 17)
    SN4L,        //!< selective next-4-line only
    DisOnly,     //!< discontinuity prefetcher alone (Fig. 13)
    SN4LDis,     //!< + discontinuity prefetcher
    SN4LDisBtb,  //!< the full proposal
    ClassicDis,  //!< conventional discontinuity prefetcher [17]
    Confluence,  //!< SHIFT + 16 K-entry BTB (upper bound, Section VI.D)
    Boomerang,   //!< BTB-directed, basic-block BTB
    Shotgun,     //!< BTB-directed, split U/C/RIB BTB
    PerfectL1i,  //!< all instruction requests served at hit latency
    PerfectL1iBtb, //!< Perfect L1i + 32 K-entry never-miss BTB
    Fdip,        //!< fetch-directed instruction prefetching (competitor)
    MicroBtb,    //!< last-level BTB behind the main BTB (competitor)
};

/** Name used in reports. */
std::string presetName(Preset preset);

/** Fetch-engine configuration. */
struct FetchConfig
{
    unsigned fetchWidth = 4;          //!< instructions per cycle
    unsigned fetchBufferEntries = 32; //!< pre-dispatch queue (Table III)
    unsigned frontendStages = 3;
    Cycle decodeRedirectPenalty = 6;  //!< BTB-miss/uncond resolved at decode
    Cycle execRedirectPenalty = 12;   //!< direction/indirect at execute
    Cycle predecodeLatency = 2;       //!< block pre-decode (reactive fills)
    unsigned ftqEntries = 32;         //!< Boomerang/Shotgun FTQ
    bool perfectL1i = false;
    bool perfectBtb = false;
};

/** Everything a run needs. */
struct SystemConfig
{
    workload::WorkloadProfile profile;
    Preset preset = Preset::Baseline;

    /**
     * Pre-built program image shared across runs (workload::ImageCache).
     * When null the System builds its own program from `profile`; when
     * set it must be the image `profile` would build (the experiment
     * runners guarantee this by resolving both from the same cache
     * entry).  Shared images are immutable, so many concurrently
     * simulating cells may hold the same pointer.
     */
    std::shared_ptr<const workload::Program> program;

    unsigned btbEntries = 2048; //!< conventional BTB (Table III)
    unsigned btbAssoc = 4;
    frontend::ShotgunBtbConfig shotgunBtb;
    unsigned boomerangBtbEntries = 2048; //!< basic-block BTB budget

    prefetch::Sn4lDisBtbConfig sn4l;
    prefetch::ConfluenceConfig confluence;
    prefetch::FdipConfig fdip;
    frontend::MicroBtbConfig microBtb;

    mem::L1iConfig l1i;
    mem::L1dConfig l1d;
    mem::LlcConfig llc;
    mem::MemoryConfig memory;
    noc::MeshConfig mesh;
    core::BackendConfig backend;
    FetchConfig fetch;

    unsigned coreTile = 5;      //!< our tile in the 4x4 mesh
    std::uint64_t runSeed = 42; //!< trace-walk seed ("checkpoint")

    rt::IntegrityConfig integrity; //!< invariant sweeps + watchdog
    rt::FaultPlan faults;          //!< seeded fault injection (--inject)

    /** Functional warmup length in retired instructions.  SimFlex
     *  checkpoints include long-term microarchitectural state (LLC,
     *  BTB, branch predictor); this pass reproduces that before the
     *  timed warm window. */
    std::uint64_t functionalWarmInstrs = 2000000;

    /**
     * Force the generic (virtual-dispatch) step path instead of the
     * preset-specialized one.  The two paths execute identical
     * statements and must produce bit-identical RunResults; this switch
     * exists for the dispatch-equivalence tests and as a debugging
     * escape hatch (`--generic-step` on the benches).
     */
    bool genericStep = false;
};

/** A config with the preset's structures sized per Section VI.D. */
SystemConfig makeConfig(const workload::WorkloadProfile &profile,
                        Preset preset);

/**
 * Process-wide default fault plan stamped into every makeConfig() result.
 * The bench harness sets this from `--inject` so all of a bench's runs
 * are perturbed without threading a plan through every figure driver.
 * Defaults to an inactive plan (FaultKind::None).
 */
void setDefaultFaultPlan(const rt::FaultPlan &plan);
const rt::FaultPlan &defaultFaultPlan();

/**
 * Process-wide default for SystemConfig::genericStep, stamped into
 * every makeConfig() result.  The bench harness sets this from
 * `--generic-step`; results must be bit-identical either way.
 */
void setDefaultGenericStep(bool generic);
bool defaultGenericStep();

} // namespace dcfb::sim

#endif // DCFB_SIM_CONFIG_H
