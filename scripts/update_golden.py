#!/usr/bin/env python3
"""Regenerate the golden-result corpus under tests/golden/.

The corpus pins the simulator's RunResult for sixteen (workload, preset)
cells (see tests/golden_cells.h); tests/test_golden.cpp asserts that
re-simulating each cell reproduces its committed JSON byte for byte.

Regeneration is deliberately guarded:

- it REFUSES to run over a dirty git tree, so new goldens can only
  ever appear in a commit whose diff shows exactly which counters
  changed -- accepting new results is a reviewed decision, never a
  side effect of a local build;
- it REFUSES to run when this machine's context (CPU model, core
  count, cpufreq governor) differs from the one recorded in the
  committed perf baseline (tests/perf/BENCH_perf_baseline.json), so a
  re-baselining commit is not a mix of reference-runner perf numbers
  and foreign-machine goldens.  Pass --force to override when the
  context change is intentional (e.g. adopting a new runner class) --
  then re-measure the perf baseline in the same commit.

Usage:
  scripts/update_golden.py [--build-dir build/release] [--force-build]
                           [--force]
"""

import argparse
import json
import pathlib
import subprocess
import sys

import machine_context

REPO = pathlib.Path(__file__).resolve().parent.parent
PERF_BASELINE = REPO / "tests" / "perf" / "BENCH_perf_baseline.json"


def run(cmd, **kwargs):
    print("  $", " ".join(str(c) for c in cmd))
    return subprocess.run(cmd, check=True, cwd=REPO, **kwargs)


def dirty_paths():
    out = subprocess.run(
        ["git", "status", "--porcelain"],
        cwd=REPO, check=True, capture_output=True, text=True).stdout
    return [line for line in out.splitlines() if line.strip()]


def context_mismatches():
    """Differences between this machine and the committed perf context."""
    if not PERF_BASELINE.exists():
        return []
    try:
        doc = json.load(open(PERF_BASELINE))
    except (OSError, json.JSONDecodeError):
        return []
    return machine_context.diff(doc.get("meta", {}).get("machine"))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build/release",
                    help="CMake build directory (default: build/release)")
    ap.add_argument("--force-build", action="store_true",
                    help="configure the build directory if it is missing")
    ap.add_argument("--force", action="store_true",
                    help="re-baseline despite a machine-context mismatch "
                         "with tests/perf/BENCH_perf_baseline.json")
    args = ap.parse_args()

    dirty = dirty_paths()
    if dirty:
        print("refusing to regenerate goldens over a dirty git tree:",
              file=sys.stderr)
        for line in dirty:
            print("  " + line, file=sys.stderr)
        print("commit or stash first, so the corpus diff stands alone.",
              file=sys.stderr)
        return 1

    mismatches = context_mismatches()
    if mismatches:
        if not args.force:
            print("refusing to re-baseline on a machine that does not "
                  "match the committed perf context:", file=sys.stderr)
            for m in mismatches:
                print("  " + m, file=sys.stderr)
            print("pass --force if the context change is intentional, "
                  "and re-measure the perf baseline in the same commit.",
                  file=sys.stderr)
            return 1
        print("machine-context mismatch overridden by --force:")
        for m in mismatches:
            print("  " + m)

    build = REPO / args.build_dir
    if not (build / "CMakeCache.txt").exists():
        if not args.force_build:
            print(f"no build at {build}; run cmake there or pass "
                  "--force-build", file=sys.stderr)
            return 1
        run(["cmake", "-S", ".", "-B", str(build), "-G", "Ninja",
             "-DCMAKE_BUILD_TYPE=Release"])

    run(["cmake", "--build", str(build), "--target", "dcfb-golden"])
    run([str(build / "bin" / "dcfb-golden"), "tests/golden"])

    changed = dirty_paths()
    if changed:
        print("\ncorpus changed; review and commit:")
        for line in changed:
            print("  " + line)
    else:
        print("\ncorpus unchanged: results are bit-identical.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
