/**
 * @file
 * Lightweight simulation profiler behind the benches' `--profile` flag.
 *
 * Two kinds of attribution, both per simulated cell:
 *
 *  - **Wall-clock split** of every cell into setup (image build +
 *    functional warmup), warm window and measured window.  One
 *    steady_clock pair per window: negligible overhead, always recorded
 *    while profiling is enabled.  This is what `scripts/perf_baseline.py`
 *    turns into cycles/sec per preset (BENCH_perf.json).
 *
 *  - **Per-phase attribution** of the cycle loop: each System::step()
 *    stage (backend, L1i tick, prefetcher, dispatch, fetch) is timed
 *    individually so the `prof` JSON section shows where a cell's cycle
 *    time goes.  This costs a few clock reads per simulated cycle, so it
 *    only runs while profiling is enabled -- absolute cycles/sec under
 *    `--profile` are a few percent lower than a plain run, uniformly
 *    across presets (the per-preset *comparison* stays valid).
 *
 * Process-global, like obs::Tracing and exec::ExecLog: the bench harness
 * enables it once, every simulated cell contributes a record, and the
 * harness drains the records into the JSON document's `prof` section.
 * Worker threads each profile their own System (accumulators live in the
 * System, not here); only push/drain synchronize.
 */

#ifndef DCFB_OBS_PROFILER_H
#define DCFB_OBS_PROFILER_H

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"

namespace dcfb::obs {

/** The attributed phases of one simulated cycle (System::step order),
 *  plus the out-of-loop integrity sweeps. */
enum class ProfPhase : unsigned {
    Backend = 0,   //!< core::Backend::beginCycle
    L1iTick,       //!< mem::L1iCache::tick (fill completion)
    Prefetcher,    //!< prefetcher tick (queue drains, table lookups)
    Dispatch,      //!< dispatch stage incl. L1d accesses
    Fetch,         //!< fetch engine cycle (BPU + fetch + predictors)
    Integrity,     //!< invariant sweeps + watchdog observations
};

inline constexpr unsigned kProfPhases = 6;

/** Display name of @p phase ("backend", "fetch", ...). */
const char *profPhaseName(ProfPhase phase);

/** Per-phase wall-seconds accumulator owned by one System. */
using PhaseSeconds = std::array<double, kProfPhases>;

/** What one simulated cell cost. */
struct ProfRecord
{
    std::string workload;
    std::string design;
    std::uint64_t cycles = 0;       //!< timed cycles (warm + measure)
    std::uint64_t instructions = 0; //!< instructions retired while timed
    double setupSeconds = 0.0;      //!< System ctor: image + warmup
    double warmSeconds = 0.0;       //!< timed warm window
    double measureSeconds = 0.0;    //!< measured window
    PhaseSeconds phaseSeconds{};    //!< cycle-loop phase attribution

    /** Cycle-loop wall (the cycles/sec denominator). */
    double simSeconds() const { return warmSeconds + measureSeconds; }

    /** Simulator-core throughput over the timed windows. */
    double
    cyclesPerSecond() const
    {
        double s = simSeconds();
        return s > 0.0 ? static_cast<double>(cycles) / s : 0.0;
    }
};

/**
 * The process-global profile switch and record log.
 */
class Profiler
{
  public:
    /** Turn profiling on/off (bench harness, from `--profile`). */
    static void setEnabled(bool on);

    /** One relaxed atomic load; safe on any thread. */
    static bool
    enabled()
    {
        return enabledFlag.load(std::memory_order_relaxed);
    }

    /** Append @p record to the process log.  Thread-safe. */
    static void push(ProfRecord record);

    /** Remove and return everything pushed so far.  Thread-safe. */
    static std::vector<ProfRecord> drain();

  private:
    static std::atomic<bool> enabledFlag;
};

/**
 * Render profiler records as the `dcfb-prof-v1` JSON section
 * ({"schema", "cells": [...]}).  Cells are sorted by (workload,
 * design) so the document is identical for every `--jobs` value (the
 * drain order under a pool is interleaving-dependent).  The bench
 * harness and the schema tests share this one producer.
 */
JsonValue profJson(std::vector<ProfRecord> records);

/** Monotonic seconds-since-some-epoch helper shared by the timers. */
inline double
profNow()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Scoped phase timer: adds the enclosed wall time to one PhaseSeconds
 * slot.  Constructed only on profiling paths (callers check
 * Profiler::enabled() first, so the un-profiled cycle loop pays one
 * branch, no clock reads).
 */
class PhaseTimer
{
  public:
    PhaseTimer(PhaseSeconds &sink_, ProfPhase phase)
        : sink(&sink_[static_cast<unsigned>(phase)]), start(profNow())
    {
    }

    ~PhaseTimer() { *sink += profNow() - start; }

    PhaseTimer(const PhaseTimer &) = delete;
    PhaseTimer &operator=(const PhaseTimer &) = delete;

  private:
    double *sink;
    double start;
};

} // namespace dcfb::obs

#endif // DCFB_OBS_PROFILER_H
