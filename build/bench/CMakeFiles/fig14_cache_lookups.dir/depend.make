# Empty dependencies file for fig14_cache_lookups.
# This may be replaced when dependencies are built.
