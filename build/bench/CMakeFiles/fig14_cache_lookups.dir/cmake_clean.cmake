file(REMOVE_RECURSE
  "CMakeFiles/fig14_cache_lookups.dir/fig14_cache_lookups.cpp.o"
  "CMakeFiles/fig14_cache_lookups.dir/fig14_cache_lookups.cpp.o.d"
  "fig14_cache_lookups"
  "fig14_cache_lookups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_cache_lookups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
