/**
 * @file
 * Seeded fault injector (--inject).
 *
 * Deterministically perturbs the simulated machine so robustness tests
 * can assert *graceful degradation*: the run completes, IPC drops,
 * counters stay conserved, and nothing crashes or hangs.  Four fault
 * kinds, all driven by one explicitly seeded Rng so a given
 * (plan, runSeed) pair replays bit-for-bit:
 *
 *  - **drop**: prefetch responses vanish at fill time (the MSHR is
 *    freed, the block never arrives).  Demand responses are never
 *    dropped -- a real memory system retries demands, and dropping them
 *    would convert the fault into a guaranteed hang;
 *  - **delay**: memory responses (demand and prefetch fills) arrive
 *    late by a configured number of cycles;
 *  - **corrupt**: pre-decode output lies -- discovered branch targets
 *    are redirected to a wrong nearby block, poisoning Dis replay, BTB
 *    prefill and proactive chains;
 *  - **backpressure**: the prefetch engine's internal queues
 *    (SeqQueue/DisQueue/RLUQueue) reject pushes, starving the proactive
 *    chains.
 *
 * Spec syntax (CLI `--inject <spec>`, parsed by parseFaultPlan):
 *
 *     <kind>[:key=value[,key=value]...]
 *     kinds: drop | delay | corrupt | backpressure | none
 *     keys:  rate=<0..1>  cycles=<delay cycles>  seed=<uint>
 *
 * e.g. `--inject drop:rate=0.5,seed=3` or `--inject delay:cycles=300`.
 */

#ifndef DCFB_RT_FAULTS_H
#define DCFB_RT_FAULTS_H

#include <cstdint>
#include <string>
#include <string_view>

#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"
#include "rt/error.h"

namespace dcfb::rt {

/** What to break. */
enum class FaultKind : std::uint8_t {
    None,
    Drop,         //!< drop prefetch responses at fill time
    Delay,        //!< delay memory responses
    Corrupt,      //!< corrupt pre-decoded branch targets
    Backpressure, //!< force prefetch-queue back-pressure
};

const char *faultKindName(FaultKind kind);

/** A parsed, config-driven injection plan. */
struct FaultPlan
{
    FaultKind kind = FaultKind::None;
    double rate = 0.25;        //!< per-event injection probability
    Cycle delayCycles = 256;   //!< extra latency for Delay faults
    std::uint64_t seed = 1;    //!< injector RNG seed (mixed with runSeed)

    bool active() const { return kind != FaultKind::None && rate > 0.0; }
};

/** Parse an `--inject` spec; error lists the accepted syntax. */
Expected<FaultPlan> parseFaultPlan(std::string_view spec);

/** Render a plan back to its canonical spec string (reports/tests). */
std::string faultPlanSpec(const FaultPlan &plan);

/**
 * The injector: one per System, seeded from (plan.seed, runSeed).
 *
 * Every hook draws from the RNG only when its fault kind is configured,
 * so enabling one kind never shifts the draw sequence of another and an
 * inactive injector costs a single predictable branch per hook.
 */
class FaultInjector
{
  public:
    FaultInjector() = default;

    FaultInjector(const FaultPlan &plan_, std::uint64_t run_seed)
        : plan(plan_), rng(plan_.seed * 0x9e3779b97f4a7c15ull ^ run_seed)
    {
        if (plan.active()) {
            cDropped = statSet.counter("faults_dropped");
            cDelayed = statSet.counter("faults_delayed");
            cDelayCycles = statSet.counter("faults_delay_cycles");
            cCorrupted = statSet.counter("faults_corrupted");
            cBackpressure = statSet.counter("faults_backpressure");
        }
    }

    bool active() const { return plan.active(); }
    const FaultPlan &planRef() const { return plan; }

    /** Drop fault: should this completed prefetch fill be discarded? */
    bool
    dropPrefetchResponse()
    {
        if (plan.kind != FaultKind::Drop || !rng.chance(plan.rate))
            return false;
        cDropped.add();
        return true;
    }

    /** Delay fault: extra cycles to add to a memory response (0 = none). */
    Cycle
    responseDelay()
    {
        if (plan.kind != FaultKind::Delay || !rng.chance(plan.rate))
            return 0;
        cDelayed.add();
        cDelayCycles.add(plan.delayCycles);
        return plan.delayCycles;
    }

    /** Corrupt fault: possibly redirect a pre-decoded branch target to a
     *  wrong nearby block (1..7 blocks away, deterministic). */
    Addr
    corruptTarget(Addr target)
    {
        if (plan.kind != FaultKind::Corrupt || !rng.chance(plan.rate))
            return target;
        cCorrupted.add();
        Addr skew = (1 + rng.below(7)) * kBlockBytes;
        return blockAlign(target) ^ skew;
    }

    /** Backpressure fault: should this queue push be rejected? */
    bool
    forceBackpressure()
    {
        if (plan.kind != FaultKind::Backpressure || !rng.chance(plan.rate))
            return false;
        cBackpressure.add();
        return true;
    }

    const StatSet &stats() const { return statSet; }
    StatSet &stats() { return statSet; }

  private:
    FaultPlan plan;
    Rng rng;
    StatSet statSet;
    obs::Counter cDropped, cDelayed, cDelayCycles, cCorrupted,
        cBackpressure;
};

} // namespace dcfb::rt

#endif // DCFB_RT_FAULTS_H
