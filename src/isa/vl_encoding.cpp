#include "isa/vl_encoding.h"

#include <cassert>

namespace dcfb::isa {

void
vlEncodeInstr(Addr pc, const VlDecodedInstr &instr,
              std::vector<std::uint8_t> &out)
{
    assert(instr.length >= kVlMinLength && instr.length <= kVlMaxLength);
    std::uint8_t header =
        static_cast<std::uint8_t>(instr.length & 0xf) |
        static_cast<std::uint8_t>(static_cast<unsigned>(instr.kind) << 4);
    out.push_back(header);
    unsigned emitted = 1;
    if (instr.hasTarget) {
        assert(hasEncodedTarget(instr.kind));
        assert(instr.length >= kVlMinBranchLength);
        std::int64_t delta = static_cast<std::int64_t>(instr.target) -
            static_cast<std::int64_t>(pc);
        auto delta32 = static_cast<std::int32_t>(delta);
        assert(delta32 == delta);
        auto u = static_cast<std::uint32_t>(delta32);
        out.push_back(static_cast<std::uint8_t>(u));
        out.push_back(static_cast<std::uint8_t>(u >> 8));
        out.push_back(static_cast<std::uint8_t>(u >> 16));
        out.push_back(static_cast<std::uint8_t>(u >> 24));
        emitted += 4;
    }
    // Operand filler: deterministic non-zero pattern so that a decoder
    // pointed at a filler byte sees garbage rather than accidental zeros.
    for (; emitted < instr.length; ++emitted)
        out.push_back(static_cast<std::uint8_t>(0xa0 | (emitted & 0xf)));
}

VlDecodedInstr
vlDecodeInstr(Addr pc, const std::uint8_t *bytes, unsigned avail)
{
    VlDecodedInstr instr;
    if (avail == 0) {
        instr.length = 0;
        return instr;
    }
    std::uint8_t header = bytes[0];
    instr.length = header & 0xf;
    instr.kind = static_cast<InstrKind>((header >> 4) & 0xf);
    if (instr.length < kVlMinLength || instr.length > kVlMaxLength) {
        instr.length = 0; // malformed: decoder pointed at a non-boundary
        return instr;
    }
    if (hasEncodedTarget(instr.kind)) {
        if (avail < kVlMinBranchLength) {
            instr.length = 0;
            return instr;
        }
        std::uint32_t u = static_cast<std::uint32_t>(bytes[1]) |
            (static_cast<std::uint32_t>(bytes[2]) << 8) |
            (static_cast<std::uint32_t>(bytes[3]) << 16) |
            (static_cast<std::uint32_t>(bytes[4]) << 24);
        instr.hasTarget = true;
        instr.target = static_cast<Addr>(
            static_cast<std::int64_t>(pc) + static_cast<std::int32_t>(u));
    }
    return instr;
}

} // namespace dcfb::isa
