/**
 * @file
 * Next-X-line sequential prefetchers (NL, N2L, N4L, N8L).
 *
 * Upon every demand access to a cache block, prefetch the next X blocks
 * that are not already present (Section IV).  These are the unselective
 * baselines whose timeliness/pollution trade-off motivates SN4L
 * (Figs. 3-5).
 */

#ifndef DCFB_PREFETCH_NEXTLINE_H
#define DCFB_PREFETCH_NEXTLINE_H

#include "common/stats.h"
#include "prefetch/prefetcher.h"

namespace dcfb::prefetch {

/**
 * NXL prefetcher with configurable depth.
 */
class NextLinePrefetcher final : public InstrPrefetcher
{
  public:
    /**
     * @param l1i_  the cache to prefetch into
     * @param depth X in next-X-line (1 = classic NL)
     */
    NextLinePrefetcher(mem::L1iCache &l1i_, unsigned depth_)
        : l1i(l1i_), depth(depth_), cIssued(statSet.lazy("nxl_issued"))
    {}

    std::string
    name() const override
    {
        return depth == 1 ? "NL" : "N" + std::to_string(depth) + "L";
    }

    void
    onDemandAccess(Addr block_addr, bool hit) override
    {
        (void)hit;
        pending = block_addr; // issue from tick to model the port limit
        havePending = true;
    }

    void
    tick(Cycle now) override
    {
        if (!havePending)
            return;
        havePending = false;
        for (unsigned i = 1; i <= depth; ++i) {
            Addr candidate = pending + Addr{i} * kBlockBytes;
            auto out = l1i.prefetch(candidate, now);
            if (out == mem::L1iCache::PfOutcome::Issued)
                cIssued.add();
        }
    }

    const StatSet &stats() const { return statSet; }

  private:
    mem::L1iCache &l1i;
    unsigned depth;
    Addr pending = 0;
    bool havePending = false;
    StatSet statSet;
    obs::LazyCounter cIssued;
};

} // namespace dcfb::prefetch

#endif // DCFB_PREFETCH_NEXTLINE_H
