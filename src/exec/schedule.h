/**
 * @file
 * Grid scheduling: the process-wide `--jobs` setting, the indexed
 * scatter/gather runner every sweep goes through, and the exec-report
 * log the bench harness drains into the `dcfb-bench-v1` JSON.
 *
 * The model is deliberately small (see DESIGN.md "Execution model"):
 *
 *  - a sweep enumerates its cells up front, on the calling thread, so
 *    config hooks and the process-wide defaults (fault plan, jobs) are
 *    only ever read serially;
 *  - runIndexed() scatters `body(i)` over a Pool and gathers at the
 *    wait() barrier; the caller merges results *in index order*, so the
 *    merged output is independent of worker interleaving;
 *  - with an effective job count of 1, runIndexed() runs the cells in
 *    index order on the calling thread with no pool at all, which is
 *    what makes `--jobs 1` bit-identical to the historical serial
 *    runner.
 *
 * Determinism rule: a cell may only depend on its own config (including
 * its own seeds) -- never on the interleaving.  Per-cell RunResults are
 * therefore identical for every `--jobs` value; only wall time and the
 * ExecReport occupancy change.
 */

#ifndef DCFB_EXEC_SCHEDULE_H
#define DCFB_EXEC_SCHEDULE_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace dcfb::exec {

/**
 * Set the process-wide default job count (the bench harness installs
 * the `--jobs` value here).  0 means "auto": use hardwareJobs().
 */
void setDefaultJobs(unsigned jobs);

/** The raw process-wide setting (0 = auto). */
unsigned defaultJobs();

/**
 * Effective job count for a sweep: @p requested when non-zero,
 * otherwise the process default, otherwise hardwareJobs().
 */
unsigned resolveJobs(unsigned requested = 0);

/** Wall time of one scheduled cell. */
struct CellTime
{
    std::string label;     //!< e.g. "OLTP (DB A)/SN4L+Dis+BTB"
    double seconds = 0.0;  //!< cell wall time
};

/** What one runIndexed() sweep did; mirrored into bench JSON. */
struct ExecReport
{
    std::string label;        //!< sweep label (table/figure name)
    unsigned jobs = 1;        //!< effective worker count
    std::uint64_t cells = 0;  //!< tasks scheduled
    double wallSeconds = 0.0; //!< submit-to-barrier wall time
    double busySeconds = 0.0; //!< summed in-task time across workers
    std::vector<CellTime> cellTimes; //!< per-cell wall, index order

    /** busy / (wall x jobs); 1.0 is a perfectly packed pool. */
    double occupancy() const;
};

/**
 * Run `body(i)` for every i in [0, n) and return the timing report.
 *
 * jobs <= 1: cells run in ascending index order on the calling thread
 * (bit-identical to a plain loop).  jobs > 1: cells are scheduled onto
 * a Pool of @p jobs workers; the call returns after the barrier, and
 * the first exception any cell threw is rethrown here.
 *
 * @param label      sweep label for the report
 * @param n          number of cells
 * @param jobs       effective worker count (callers resolveJobs() first)
 * @param body       the cell; must only touch cell-owned or
 *                   shared-immutable state when jobs > 1
 * @param cell_label optional label for per-cell timing entries
 */
ExecReport
runIndexed(std::string label, std::size_t n, unsigned jobs,
           const std::function<void(std::size_t)> &body,
           const std::function<std::string(std::size_t)> &cell_label = {});

/** runIndexed() without the report: a bare indexed parallel loop. */
void parallelFor(std::size_t n, unsigned jobs,
                 const std::function<void(std::size_t)> &body);

/**
 * Process-wide log of sweep reports.  ExperimentGrid and
 * bench::simulateAll push here; the bench harness drains the log into
 * the JSON document's "exec" section at exit.  Thread-safe.
 */
class ExecLog
{
  public:
    static void push(ExecReport report);

    /** Remove and return everything pushed so far. */
    static std::vector<ExecReport> drain();
};

} // namespace dcfb::exec

#endif // DCFB_EXEC_SCHEDULE_H
