/**
 * @file
 * Figure 2: fraction of L1i misses that are sequential (spatially next
 * to the last accessed block).  Paper band: 65-80 %.
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace dcfb;
    bench::Harness h(argc, argv, "Fig. 2 - fraction of sequential L1i misses",
                  "65-80% of misses are sequential");

    sim::Table table({"workload", "L1i misses", "sequential",
                      "sequential fraction"});
    double sum = 0.0;
    auto names = bench::allWorkloads();
    for (const auto &name : names) {
        auto cfg = sim::makeConfig(workload::serverProfile(name),
                                   sim::Preset::Baseline);
        auto res = sim::simulate(cfg, bench::windows());
        double frac = res.ratio("l1i.l1i_seq_misses", "l1i.l1i_misses");
        sum += frac;
        table.addRow({name, std::to_string(res.stat("l1i.l1i_misses")),
                      std::to_string(res.stat("l1i.l1i_seq_misses")),
                      sim::Table::pct(frac)});
    }
    table.addRow({"Average", "", "",
                  sim::Table::pct(sum / static_cast<double>(names.size()))});
    h.report(table, "Fraction of sequential cache misses");
    return 0;
}
