/**
 * @file
 * Recently-Looked-Up (RLU) filter (Section V.B).
 *
 * An 8-entry structure holding the addresses of the blocks most recently
 * looked up in the L1i, either by the prefetcher or by the processor's
 * demand stream.  Prefetch candidates that hit in the RLU are dropped
 * without a cache lookup, which is what keeps the proactive SN4L+Dis
 * engine's lookup count at Shotgun's level (Fig. 14).
 */

#ifndef DCFB_PREFETCH_RLU_H
#define DCFB_PREFETCH_RLU_H

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace dcfb::prefetch {

/**
 * Small fully-associative FIFO of recently looked-up block addresses.
 */
class Rlu
{
  public:
    /** @param entries_ filter size; 0 disables filtering entirely. */
    explicit Rlu(std::size_t entries_ = 8)
        : ring(entries_, kInvalidAddr)
    {}

    /** Record a lookup of @p block_addr. */
    void
    touch(Addr block_addr)
    {
        if (ring.empty())
            return;
        Addr key = blockAlign(block_addr);
        if (containsNoStat(key))
            return;
        ring[head] = key;
        head = (head + 1) % ring.size();
    }

    /** Membership test (counts filter statistics). */
    bool
    contains(Addr block_addr)
    {
        statSet.add("rlu_checks");
        if (containsNoStat(blockAlign(block_addr))) {
            statSet.add("rlu_hits");
            return true;
        }
        return false;
    }

    std::size_t size() const { return ring.size(); }

    /** Storage: entries x block-address tag (~52 bits each). */
    std::uint64_t storageBits() const { return ring.size() * 52; }

    const StatSet &stats() const { return statSet; }

  private:
    bool
    containsNoStat(Addr key) const
    {
        for (Addr a : ring) {
            if (a == key)
                return true;
        }
        return false;
    }

    std::vector<Addr> ring;
    std::size_t head = 0;
    StatSet statSet;
};

} // namespace dcfb::prefetch

#endif // DCFB_PREFETCH_RLU_H
