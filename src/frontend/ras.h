/**
 * @file
 * Return address stack.
 *
 * Returns are predicted from the RAS rather than the BTB; the BTB's role
 * for a return instruction is only to *identify* it as a branch before
 * decode.  Fixed depth with wrap-around on overflow (older entries are
 * clobbered, as in real hardware).
 */

#ifndef DCFB_FRONTEND_RAS_H
#define DCFB_FRONTEND_RAS_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace dcfb::frontend {

/**
 * Circular return-address stack.
 */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned depth = 32)
        : entries(depth, kInvalidAddr)
    {}

    /** Push the return address of a call. */
    void
    push(Addr return_addr)
    {
        top = (top + 1) % entries.size();
        entries[top] = return_addr;
        if (occupancy < entries.size())
            ++occupancy;
    }

    /** Pop the predicted return target; kInvalidAddr when empty. */
    Addr
    pop()
    {
        if (occupancy == 0)
            return kInvalidAddr;
        Addr addr = entries[top];
        top = (top + entries.size() - 1) % entries.size();
        --occupancy;
        return addr;
    }

    /** Peek without popping. */
    Addr
    peek() const
    {
        return occupancy == 0 ? kInvalidAddr : entries[top];
    }

    std::size_t size() const { return occupancy; }
    std::size_t depth() const { return entries.size(); }
    void clear() { occupancy = 0; }

  private:
    std::vector<Addr> entries;
    std::size_t top = 0;
    std::size_t occupancy = 0;
};

} // namespace dcfb::frontend

#endif // DCFB_FRONTEND_RAS_H
