/**
 * @file
 * Program image: the raw bytes of the synthetic program.
 *
 * The image is the ground truth that pre-decoders read.  The simulator
 * never attaches instruction semantics to cache blocks directly; every
 * component that claims to "pre-decode a block" (Dis, the BTB prefetcher,
 * Boomerang, Shotgun) reads these bytes and runs a real decoder over
 * them, so metadata-miss behaviour is faithful.
 */

#ifndef DCFB_WORKLOAD_IMAGE_H
#define DCFB_WORKLOAD_IMAGE_H

#include <array>
#include <cstdint>
#include <unordered_map>

#include "common/types.h"

namespace dcfb::workload {

/**
 * Sparse byte-addressable memory image keyed by cache block.
 */
class ProgramImage
{
  public:
    using Block = std::array<std::uint8_t, kBlockBytes>;

    /** Copy @p n bytes to @p addr, allocating blocks as needed. */
    void write(Addr addr, const std::uint8_t *data, std::size_t n);

    /**
     * Read up to @p n bytes from @p addr into @p out, stitching across
     * blocks.  Stops early at the first unmapped block.
     * @return the number of bytes actually read.
     */
    unsigned read(Addr addr, std::uint8_t *out, unsigned n) const;

    /** Raw bytes of the block containing @p addr, or nullptr. */
    const Block *block(Addr addr) const;

    /** True when the block containing @p addr is mapped. */
    bool contains(Addr addr) const { return block(addr) != nullptr; }

    /** Number of mapped 64-byte blocks. */
    std::size_t numBlocks() const { return blocks.size(); }

    /** Total mapped code bytes (block granularity). */
    std::size_t sizeBytes() const { return blocks.size() * kBlockBytes; }

  private:
    std::unordered_map<Addr, Block> blocks; //!< keyed by block number
};

} // namespace dcfb::workload

#endif // DCFB_WORKLOAD_IMAGE_H
