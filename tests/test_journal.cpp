/**
 * @file
 * Crash-safety tests: the write-ahead job journal (record encoding,
 * torn-tail repair, checksum containment, rotation/compaction), the
 * service fault plane (--svc-inject parsing and determinism), daemon
 * recovery (warm and cold replay, idempotent resubmission), the lease
 * watchdog, and the client retry policy (budget, timeouts) over a real
 * socket against an injected daemon.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>

#include "rt/faults.h"
#include "sim/simulator.h"
#include "svc/client.h"
#include "svc/fingerprint.h"
#include "svc/journal.h"
#include "svc/protocol.h"
#include "svc/server.h"
#include "workload/profiles.h"

namespace dcfb {
namespace {

/** Fresh scratch directory under TMPDIR for one test. */
std::string
scratchDir(const std::string &tag)
{
    std::string templ =
        ::testing::TempDir() + "dcfb_jnl_" + tag + "_XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    const char *made = ::mkdtemp(buf.data());
    EXPECT_NE(made, nullptr);
    return made ? made : templ;
}

/** Shrink a config so one simulation is fast but non-trivial. */
void
shrink(sim::SystemConfig &cfg)
{
    cfg.profile.numFunctions = 24;
    cfg.profile.dataFootprint = 1ull << 20;
    cfg.functionalWarmInstrs = 40000;
}

sim::RunWindows
tinyWindows()
{
    return sim::RunWindows{4000, 6000};
}

std::string
submitLine(std::uint64_t seed)
{
    return R"j({"op":"submit","workload":"Web (Apache)","preset":"SN4L",)j"
           R"("seed":)" +
        std::to_string(seed) + "}";
}

/** The fingerprint key the daemon under test computes for
 *  submitLine(seed): same makeConfig + configHook + default windows. */
std::string
keyFor(std::uint64_t seed)
{
    sim::SystemConfig cfg =
        sim::makeConfig(workload::serverProfile("Web (Apache)"),
                        sim::Preset::SN4L);
    cfg.faults = rt::FaultPlan{};
    cfg.runSeed = seed;
    shrink(cfg);
    return svc::cacheKey(cfg, tinyWindows());
}

svc::JournalRecord
admitRecordFor(std::uint64_t seed, std::uint64_t job_id)
{
    svc::JournalRecord rec;
    rec.type = svc::JournalRecord::Type::Admit;
    rec.key = keyFor(seed);
    rec.jobId = job_id;
    rec.label = "Web (Apache)/SN4L";
    rec.spec = *obs::JsonValue::parse(submitLine(seed));
    return rec;
}

std::vector<std::string>
filesIn(const std::string &dir)
{
    std::vector<std::string> names;
    if (DIR *d = ::opendir(dir.c_str())) {
        while (dirent *e = ::readdir(d)) {
            std::string name = e->d_name;
            if (name != "." && name != "..")
                names.push_back(name);
        }
        ::closedir(d);
    }
    return names;
}

svc::ServerConfig
testServerConfig(const std::string &tag)
{
    svc::ServerConfig config;
    config.socketPath = scratchDir(tag) + "/dcfb.sock";
    config.jobs = 1;
    config.queueCapacity = 8;
    config.retryAfterMs = 10;
    config.defaultWindows = tinyWindows();
    config.configHook = shrink;
    return config;
}

std::uint64_t
counterOf(const obs::JsonValue &stats, const std::string &name)
{
    const obs::JsonValue *counters = stats.find("counters");
    if (!counters)
        return 0;
    const obs::JsonValue *c = counters->find(name);
    return c ? c->asUint() : 0;
}

/** Poll status until the job is terminal; returns the last reply. */
obs::JsonValue
awaitTerminal(svc::Server &server, const std::string &job)
{
    for (int i = 0; i < 2000; ++i) {
        obs::JsonValue reply = server.handleLine(
            R"({"op":"status","job":")" + job + R"("})");
        const obs::JsonValue *state = reply.find("state");
        if (state && state->asString() != "queued" &&
            state->asString() != "running")
            return reply;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ADD_FAILURE() << "job " << job << " never reached a terminal state";
    return obs::JsonValue();
}

// -- journal format -------------------------------------------------------

TEST(Journal, EncodeDecodeRoundTripsEveryRecordType)
{
    svc::JournalRecord admit;
    admit.type = svc::JournalRecord::Type::Admit;
    admit.key = "00c0ffee00c0ffee";
    admit.jobId = 7;
    admit.label = "Web (Apache)/SN4L";
    admit.spec = *obs::JsonValue::parse(submitLine(3));

    svc::JournalRecord failed;
    failed.type = svc::JournalRecord::Type::Failed;
    failed.key = admit.key;
    failed.jobId = 7;
    failed.errorCode = "deadline_exceeded";
    failed.errorText = "job missed its deadline";

    for (const svc::JournalRecord &rec : {admit, failed}) {
        std::string line = svc::Journal::encode(rec);
        EXPECT_EQ(line.find('\n'), std::string::npos);
        auto back = svc::Journal::decode(line);
        ASSERT_TRUE(back.ok()) << back.error().render();
        EXPECT_EQ(back.value().type, rec.type);
        EXPECT_EQ(back.value().key, rec.key);
        EXPECT_EQ(back.value().jobId, rec.jobId);
        EXPECT_EQ(back.value().label, rec.label);
        EXPECT_EQ(back.value().spec.dump(), rec.spec.dump());
        EXPECT_EQ(back.value().errorCode, rec.errorCode);
        EXPECT_EQ(back.value().errorText, rec.errorText);
    }
}

TEST(Journal, DecodeRejectsTamperedLines)
{
    std::string line = svc::Journal::encode(admitRecordFor(3, 1));
    ASSERT_TRUE(svc::Journal::decode(line).ok());

    // Flip one body byte: the crc no longer matches.
    std::string bent = line;
    bent[10] = bent[10] == 'x' ? 'y' : 'x';
    EXPECT_FALSE(svc::Journal::decode(bent).ok());

    EXPECT_FALSE(svc::Journal::decode("not json").ok());
    EXPECT_FALSE(svc::Journal::decode(R"({"type":"admit"})").ok());
    EXPECT_FALSE(svc::Journal::decode("").ok());
}

TEST(Journal, FreshDirectoryOpensEmptyWithAHeaderSegment)
{
    std::string dir = scratchDir("fresh");
    svc::Journal journal({dir});
    auto records = journal.open();
    ASSERT_TRUE(records.ok()) << records.error().render();
    EXPECT_TRUE(records.value().empty());
    EXPECT_EQ(journal.stats().recordsRecovered, 0u);

    // One segment, holding only the schema header line.
    std::vector<std::string> files = filesIn(dir);
    ASSERT_EQ(files.size(), 1u);
    EXPECT_EQ(files[0], "journal-000001.ndjson");
}

TEST(Journal, EmptySegmentFileIsTolerated)
{
    std::string dir = scratchDir("empty");
    { std::ofstream(dir + "/journal-000001.ndjson"); }
    svc::Journal journal({dir});
    auto records = journal.open();
    ASSERT_TRUE(records.ok()) << records.error().render();
    EXPECT_TRUE(records.value().empty());
    // And the journal is writable afterwards.
    ASSERT_TRUE(journal.append(admitRecordFor(5, 1)).ok());
}

TEST(Journal, TornFinalRecordIsRepairedLosingOnlyThatRecord)
{
    std::string dir = scratchDir("torn");
    {
        svc::Journal journal({dir});
        ASSERT_TRUE(journal.open().ok());
        ASSERT_TRUE(journal.append(admitRecordFor(11, 1)).ok());
        ASSERT_TRUE(journal.append(admitRecordFor(12, 2)).ok());
    }
    // Simulate a crash mid-append: half a record, no newline.
    {
        std::string half =
            svc::Journal::encode(admitRecordFor(13, 3));
        std::ofstream out(dir + "/journal-000001.ndjson",
                          std::ios::app);
        out << half.substr(0, half.size() / 2);
    }
    svc::Journal journal({dir});
    auto records = journal.open();
    ASSERT_TRUE(records.ok()) << records.error().render();
    ASSERT_EQ(records.value().size(), 2u);
    EXPECT_EQ(records.value()[0].key, keyFor(11));
    EXPECT_EQ(records.value()[1].key, keyFor(12));
    EXPECT_EQ(journal.stats().tornTailsRepaired, 1u);
    EXPECT_EQ(journal.stats().checksumRejects, 0u);

    // The repaired journal accepts appends again.
    ASSERT_TRUE(journal.append(admitRecordFor(13, 3)).ok());
    svc::Journal reread({dir});
    auto again = reread.open();
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.value().size(), 3u);
}

TEST(Journal, ChecksumMismatchMidSegmentSkipsOnlyTheBadRecord)
{
    std::string dir = scratchDir("crc");
    {
        svc::Journal journal({dir});
        ASSERT_TRUE(journal.open().ok());
        for (std::uint64_t seed = 21; seed <= 23; ++seed)
            ASSERT_TRUE(
                journal.append(admitRecordFor(seed, seed)).ok());
    }
    // Corrupt the middle record in place (bit rot / bad sector), body
    // intact as a line but failing its crc.
    std::string path = dir + "/journal-000001.ndjson";
    std::vector<std::string> lines;
    {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), 4u); // header + 3 admits
    lines[2][lines[2].find(':') + 2] ^= 1;
    {
        std::ofstream out(path, std::ios::trunc);
        for (const std::string &line : lines)
            out << line << '\n';
    }
    svc::Journal journal({dir});
    auto records = journal.open();
    ASSERT_TRUE(records.ok()) << records.error().render();
    ASSERT_EQ(records.value().size(), 2u);
    EXPECT_EQ(records.value()[0].key, keyFor(21));
    EXPECT_EQ(records.value()[1].key, keyFor(23));
    EXPECT_EQ(journal.stats().checksumRejects, 1u);
    EXPECT_EQ(journal.stats().tornTailsRepaired, 0u);
}

TEST(Journal, RotationCompactsRetiredRecordsAndUnlinksOldSegments)
{
    std::string dir = scratchDir("rotate");
    svc::Journal::Config config{dir};
    config.rotateEvery = 4;
    svc::Journal journal(config);
    ASSERT_TRUE(journal.open().ok());

    // Admit+retire pairs push the record count past rotateEvery while
    // the live set stays small, so compaction kicks in.
    for (std::uint64_t seed = 31; seed <= 34; ++seed) {
        ASSERT_TRUE(journal.append(admitRecordFor(seed, seed)).ok());
        svc::JournalRecord done;
        done.type = svc::JournalRecord::Type::Done;
        done.key = keyFor(seed);
        done.jobId = seed;
        ASSERT_TRUE(journal.append(done).ok());
    }
    ASSERT_TRUE(journal.append(admitRecordFor(35, 35)).ok());
    svc::JournalStats stats = journal.stats();
    EXPECT_GE(stats.rotations, 1u);
    EXPECT_EQ(stats.liveRecords, 1u);

    // Exactly one segment remains on disk and reopening it recovers
    // only the unretired admit.
    std::vector<std::string> files = filesIn(dir);
    ASSERT_EQ(files.size(), 1u);
    svc::Journal reread({dir});
    auto records = reread.open();
    ASSERT_TRUE(records.ok()) << records.error().render();
    ASSERT_EQ(records.value().size(), 1u);
    EXPECT_EQ(records.value()[0].key, keyFor(35));
    EXPECT_EQ(records.value()[0].type,
              svc::JournalRecord::Type::Admit);
}

TEST(Journal, SchemaMismatchIsAHardError)
{
    std::string dir = scratchDir("schema");
    {
        svc::Journal journal({dir});
        ASSERT_TRUE(journal.open().ok());
        ASSERT_TRUE(journal.append(admitRecordFor(41, 1)).ok());
    }
    // Rewrite the header to claim a future schema: refusing to guess
    // beats silently dropping someone else's records.
    std::string path = dir + "/journal-000001.ndjson";
    std::vector<std::string> lines;
    {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    ASSERT_GE(lines.size(), 2u);
    {
        // A well-formed header (valid crc) claiming a future schema.
        std::string body =
            R"({"type":"header","schema":"dcfb-journal-v9"})";
        std::string header = body.substr(0, body.size() - 1) +
            ",\"crc\":\"" + svc::fnv1aHex(body) + "\"}";
        std::ofstream out(path, std::ios::trunc);
        out << header << '\n' << lines[1] << '\n';
    }
    svc::Journal journal({dir});
    EXPECT_FALSE(journal.open().ok());
}

TEST(Journal, FsyncPolicyParsesAndRenders)
{
    EXPECT_EQ(svc::parseFsyncPolicy("always").value(),
              svc::FsyncPolicy::Always);
    EXPECT_EQ(svc::parseFsyncPolicy("rotate").value(),
              svc::FsyncPolicy::Rotate);
    EXPECT_EQ(svc::parseFsyncPolicy("never").value(),
              svc::FsyncPolicy::Never);
    EXPECT_FALSE(svc::parseFsyncPolicy("sometimes").ok());
    EXPECT_STREQ(svc::fsyncPolicyName(svc::FsyncPolicy::Rotate),
                 "rotate");
}

TEST(Journal, InjectedTornWriteLosesExactlyOneRecord)
{
    std::string dir = scratchDir("inject");
    rt::SvcFaultPlan plan =
        rt::parseSvcFaultPlan("truncate:rate=1,seed=5").value();
    rt::SvcFaultInjector inject(plan);
    {
        svc::Journal::Config config{dir};
        svc::Journal journal(config);
        ASSERT_TRUE(journal.open().ok());
        ASSERT_TRUE(journal.append(admitRecordFor(51, 1)).ok());
    }
    {
        svc::Journal::Config config{dir};
        config.inject = &inject;
        svc::Journal journal(config);
        ASSERT_TRUE(journal.open().ok());
        // The torn append still reports success: the damage is only
        // observable at the next open, exactly like a real crash.
        ASSERT_TRUE(journal.append(admitRecordFor(52, 2)).ok());
        EXPECT_GE(inject.counters().writesTruncated, 1u);
    }
    svc::Journal reread({dir});
    auto records = reread.open();
    ASSERT_TRUE(records.ok()) << records.error().render();
    ASSERT_EQ(records.value().size(), 1u);
    EXPECT_EQ(records.value()[0].key, keyFor(51));
    EXPECT_EQ(reread.stats().tornTailsRepaired, 1u);
}

// -- service fault plane --------------------------------------------------

TEST(SvcFaultPlane, SpecsParseAndRenderCanonically)
{
    auto plan = rt::parseSvcFaultPlan("drop");
    ASSERT_TRUE(plan.ok());
    EXPECT_EQ(plan.value().kind, rt::SvcFaultKind::Drop);
    EXPECT_DOUBLE_EQ(plan.value().rate, 0.05);

    auto delay =
        rt::parseSvcFaultPlan("delay:rate=0.5,delay_ms=10,seed=7");
    ASSERT_TRUE(delay.ok());
    EXPECT_EQ(delay.value().kind, rt::SvcFaultKind::Delay);
    EXPECT_DOUBLE_EQ(delay.value().rate, 0.5);
    EXPECT_EQ(delay.value().delayMs, 10u);
    EXPECT_EQ(delay.value().seed, 7u);

    // Canonical spec round-trips through the parser.
    std::string spec = rt::svcFaultPlanSpec(delay.value());
    auto again = rt::parseSvcFaultPlan(spec);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(rt::svcFaultPlanSpec(again.value()), spec);

    EXPECT_EQ(rt::parseSvcFaultPlan("none").value().kind,
              rt::SvcFaultKind::None);
    EXPECT_FALSE(rt::parseSvcFaultPlan("frob").ok());
    EXPECT_FALSE(rt::parseSvcFaultPlan("drop:rate=2").ok());
    EXPECT_FALSE(rt::parseSvcFaultPlan("drop:bogus=1").ok());
    EXPECT_FALSE(rt::parseSvcFaultPlan("drop:delay_ms=0").ok());
}

TEST(SvcFaultPlane, SeededInjectorIsDeterministic)
{
    rt::SvcFaultPlan plan =
        rt::parseSvcFaultPlan("drop:rate=0.5,seed=9").value();
    rt::SvcFaultInjector a(plan), b(plan);
    unsigned dropped = 0;
    for (int i = 0; i < 200; ++i) {
        bool da = a.dropFrame();
        EXPECT_EQ(da, b.dropFrame()) << "diverged at draw " << i;
        dropped += da;
    }
    // An honest Bernoulli(0.5): not all-or-nothing.
    EXPECT_GT(dropped, 50u);
    EXPECT_LT(dropped, 150u);
    EXPECT_EQ(a.counters().framesDropped, dropped);
}

// -- daemon recovery ------------------------------------------------------

TEST(SvcRecovery, ColdReplayRerunsIncompleteJobs)
{
    svc::ServerConfig config = testServerConfig("cold");
    config.journalDir = scratchDir("cold_journal");
    // A crash after admit, before completion: the admit record is the
    // only trace of the job.
    {
        svc::Journal journal({config.journalDir});
        ASSERT_TRUE(journal.open().ok());
        ASSERT_TRUE(journal.append(admitRecordFor(61, 9)).ok());
    }
    svc::Server server(config);
    ASSERT_TRUE(server.start().ok());

    obs::JsonValue stats = server.statsSnapshot();
    EXPECT_EQ(counterOf(stats, "svc.recovery.replayed"), 1u);

    server.requestDrain();
    server.awaitDrained();
    stats = server.statsSnapshot();
    EXPECT_EQ(counterOf(stats, "svc.sims_executed"), 1u);
    EXPECT_EQ(counterOf(stats, "svc.completed"), 1u);
    const obs::JsonValue *journal_stats = stats.find("journal");
    ASSERT_NE(journal_stats, nullptr);
    EXPECT_EQ(journal_stats->find("records_recovered")->asUint(), 1u);
    // The completion appended its own terminal record.
    EXPECT_GE(journal_stats->find("records_appended")->asUint(), 1u);
    server.shutdown();
}

TEST(SvcRecovery, WarmReplayCompletesFromTheResultCacheWithoutResim)
{
    std::string cache_dir = scratchDir("warm_cache");
    std::string journal_dir = scratchDir("warm_journal");

    // First incarnation computes the result and persists it.
    {
        svc::ServerConfig config = testServerConfig("warm_a");
        config.cacheDir = cache_dir;
        config.journalDir = journal_dir;
        svc::Server server(config);
        ASSERT_TRUE(server.start().ok());
        obs::JsonValue reply = server.handleLine(submitLine(62));
        ASSERT_TRUE(reply.find("ok")->asBool()) << reply.dump();
        awaitTerminal(server, reply.find("job")->asString());
        server.shutdown();
    }
    // The crash window: admit journaled, result cached, terminal
    // record lost.
    {
        svc::Journal journal({journal_dir});
        ASSERT_TRUE(journal.open().ok());
        ASSERT_TRUE(journal.append(admitRecordFor(62, 9)).ok());
    }
    svc::ServerConfig config = testServerConfig("warm_b");
    config.cacheDir = cache_dir;
    config.journalDir = journal_dir;
    svc::Server server(config);
    ASSERT_TRUE(server.start().ok());

    obs::JsonValue stats = server.statsSnapshot();
    EXPECT_EQ(counterOf(stats, "svc.recovery.cache_hits"), 1u);
    EXPECT_EQ(counterOf(stats, "svc.recovery.replayed"), 0u);
    EXPECT_EQ(counterOf(stats, "svc.sims_executed"), 0u);

    // A blind resubmit of the same spec finds the recovered result.
    obs::JsonValue dup = server.handleLine(submitLine(62));
    ASSERT_TRUE(dup.find("ok")->asBool()) << dup.dump();
    const obs::JsonValue *known = dup.find("already_known");
    ASSERT_NE(known, nullptr) << dup.dump();
    EXPECT_TRUE(known->asBool());
    EXPECT_EQ(dup.find("state")->asString(), "done");
    ASSERT_NE(dup.find("recovered"), nullptr);
    EXPECT_TRUE(dup.find("recovered")->asBool());
    server.shutdown();
}

TEST(SvcRecovery, StaleKeyIsRecomputedAndCounted)
{
    svc::ServerConfig config = testServerConfig("rekey");
    config.journalDir = scratchDir("rekey_journal");
    {
        svc::Journal journal({config.journalDir});
        ASSERT_TRUE(journal.open().ok());
        svc::JournalRecord admit = admitRecordFor(63, 9);
        // A key from an older fingerprint schema: the recomputed one
        // is authoritative and the mismatch is surfaced.
        admit.key = "00000000deadbeef";
        ASSERT_TRUE(journal.append(admit).ok());
    }
    svc::Server server(config);
    ASSERT_TRUE(server.start().ok());
    obs::JsonValue stats = server.statsSnapshot();
    EXPECT_EQ(counterOf(stats, "svc.recovery.key_mismatch"), 1u);
    EXPECT_EQ(counterOf(stats, "svc.recovery.replayed"), 1u);

    server.requestDrain();
    server.awaitDrained();
    // The replayed job ran to completion under its recomputed key: a
    // duplicate submit would have been deduplicated against it.
    EXPECT_EQ(counterOf(server.statsSnapshot(), "svc.completed"), 1u);
    server.shutdown();

    // The stale admit was retired with a terminal record, not left
    // behind: the journal's live set is empty, and a second
    // incarnation replays nothing (without the retirement the old key
    // would re-run on every restart forever).
    {
        svc::Journal journal({config.journalDir});
        ASSERT_TRUE(journal.open().ok());
        EXPECT_EQ(journal.stats().liveRecords, 0u);
    }
    svc::ServerConfig again = testServerConfig("rekey_b");
    again.journalDir = config.journalDir;
    svc::Server second(again);
    ASSERT_TRUE(second.start().ok());
    obs::JsonValue restats = second.statsSnapshot();
    EXPECT_EQ(counterOf(restats, "svc.recovery.replayed"), 0u);
    EXPECT_EQ(counterOf(restats, "svc.recovery.key_mismatch"), 0u);
    second.shutdown();
}

TEST(SvcRecovery, ResubmitAfterCompletionIsAlreadyKnown)
{
    svc::ServerConfig config = testServerConfig("idem");
    config.journalDir = scratchDir("idem_journal");
    svc::Server server(config);
    ASSERT_TRUE(server.start().ok());

    obs::JsonValue first = server.handleLine(submitLine(64));
    ASSERT_TRUE(first.find("ok")->asBool()) << first.dump();
    std::string job = first.find("job")->asString();
    awaitTerminal(server, job);

    // No result cache configured: the idempotency index alone must
    // recognize the retransmitted submit (a client whose reply frame
    // was lost blindly retries).
    obs::JsonValue dup = server.handleLine(submitLine(64));
    ASSERT_TRUE(dup.find("ok")->asBool()) << dup.dump();
    const obs::JsonValue *known = dup.find("already_known");
    ASSERT_NE(known, nullptr) << dup.dump();
    EXPECT_TRUE(known->asBool());
    EXPECT_EQ(dup.find("job")->asString(), job);

    obs::JsonValue stats = server.statsSnapshot();
    EXPECT_EQ(counterOf(stats, "svc.already_known"), 1u);
    EXPECT_EQ(counterOf(stats, "svc.sims_executed"), 1u);
    server.shutdown();
}

// -- lease watchdog -------------------------------------------------------

TEST(SvcLease, WedgedWorkerIsReclaimedAndTheJobStillCompletes)
{
    svc::ServerConfig config = testServerConfig("reclaim");
    config.leaseMs = 50;
    config.leaseMaxReclaims = 100; // reclaim, never give up
    std::atomic<bool> wedged{false};
    config.runHook = [&](const std::string &) {
        // Wedge only the first run; the requeued attempt sails through.
        if (!wedged.exchange(true))
            std::this_thread::sleep_for(
                std::chrono::milliseconds(300));
    };
    svc::Server server(config);
    ASSERT_TRUE(server.start().ok());

    obs::JsonValue reply = server.handleLine(submitLine(71));
    ASSERT_TRUE(reply.find("ok")->asBool()) << reply.dump();
    std::string job = reply.find("job")->asString();

    obs::JsonValue status = awaitTerminal(server, job);
    EXPECT_EQ(status.find("state")->asString(), "done")
        << status.dump();

    server.requestDrain();
    server.awaitDrained();
    obs::JsonValue stats = server.statsSnapshot();
    EXPECT_GE(counterOf(stats, "svc.lease.reclaimed"), 1u);
    // The wedged worker's late completion was discarded, not
    // double-counted.
    EXPECT_GE(counterOf(stats, "svc.lease.stale_completions"), 1u);
    EXPECT_EQ(counterOf(stats, "svc.completed"), 1u);
    EXPECT_EQ(counterOf(stats, "svc.invariant_violations"), 0u);
    server.shutdown();
}

TEST(SvcLease, ReclaimedJobRunsConcurrentlyWithItsStaleWorker)
{
    // Two pool workers: after the reclaim the stale run and its
    // replacement really do execute at the same time, so this test
    // (under TSan) proves the runs share no mutable job state.
    svc::ServerConfig config = testServerConfig("concurrent");
    config.jobs = 2;
    config.leaseMs = 50;
    config.leaseMaxReclaims = 100;
    std::atomic<bool> wedged{false};
    config.runHook = [&](const std::string &) {
        // Wedge only the first run long enough for the watchdog to
        // reclaim and the second worker to start simulating; the
        // wedged worker then wakes and simulates the same job in
        // parallel with (or after) its replacement.
        if (!wedged.exchange(true))
            std::this_thread::sleep_for(
                std::chrono::milliseconds(120));
    };
    svc::Server server(config);
    ASSERT_TRUE(server.start().ok());

    obs::JsonValue reply = server.handleLine(submitLine(73));
    ASSERT_TRUE(reply.find("ok")->asBool()) << reply.dump();
    std::string job = reply.find("job")->asString();

    obs::JsonValue status = awaitTerminal(server, job);
    EXPECT_EQ(status.find("state")->asString(), "done")
        << status.dump();

    server.requestDrain();
    server.awaitDrained();
    obs::JsonValue stats = server.statsSnapshot();
    EXPECT_GE(counterOf(stats, "svc.lease.reclaimed"), 1u);
    EXPECT_GE(counterOf(stats, "svc.lease.stale_completions"), 1u);
    // One observable completion, however many runs raced.
    EXPECT_EQ(counterOf(stats, "svc.completed"), 1u);
    server.shutdown();
}

TEST(SvcLease, HeartbeatKeepsASlowButHealthySimulationAlive)
{
    // A lease far shorter than the simulation, and a first missed
    // lease is fatal: only the mid-simulation heartbeat (renewed at
    // the integrity sweep cadence, including functional warmup) can
    // carry this job to completion.
    svc::ServerConfig config = testServerConfig("heartbeat");
    config.leaseMs = 10;
    config.leaseMaxReclaims = 0;
    config.configHook = [](sim::SystemConfig &cfg) {
        shrink(cfg);
        // Enough functional warmup that the run comfortably outlasts
        // several lease periods.
        cfg.functionalWarmInstrs = 3000000;
    };
    svc::Server server(config);
    ASSERT_TRUE(server.start().ok());

    obs::JsonValue reply = server.handleLine(submitLine(74));
    ASSERT_TRUE(reply.find("ok")->asBool()) << reply.dump();
    obs::JsonValue status =
        awaitTerminal(server, reply.find("job")->asString());
    EXPECT_EQ(status.find("state")->asString(), "done")
        << status.dump();

    server.requestDrain();
    server.awaitDrained();
    obs::JsonValue stats = server.statsSnapshot();
    EXPECT_EQ(counterOf(stats, "svc.lease.reclaimed"), 0u);
    EXPECT_EQ(counterOf(stats, "svc.lease.expired_failed"), 0u);
    EXPECT_EQ(counterOf(stats, "svc.completed"), 1u);
    server.shutdown();
}

TEST(SvcLease, ExhaustedReclaimsFailTheJobWithATypedError)
{
    svc::ServerConfig config = testServerConfig("expire");
    config.leaseMs = 40;
    config.leaseMaxReclaims = 0; // first missed lease is fatal
    config.runHook = [](const std::string &) {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
    };
    svc::Server server(config);
    ASSERT_TRUE(server.start().ok());

    obs::JsonValue reply = server.handleLine(submitLine(72));
    ASSERT_TRUE(reply.find("ok")->asBool()) << reply.dump();
    std::string job = reply.find("job")->asString();

    obs::JsonValue status = awaitTerminal(server, job);
    EXPECT_EQ(status.find("state")->asString(), "failed")
        << status.dump();
    EXPECT_EQ(status.find("error")->asString(), "lease_expired");

    server.requestDrain();
    server.awaitDrained();
    obs::JsonValue stats = server.statsSnapshot();
    EXPECT_EQ(counterOf(stats, "svc.lease.expired_failed"), 1u);
    EXPECT_GE(counterOf(stats, "svc.lease.reclaimed"), 1u);
    EXPECT_EQ(counterOf(stats, "svc.failed"), 1u);
    server.shutdown();
}

// -- client retry policy --------------------------------------------------

TEST(SvcClientRetry, BudgetBoundsTimeSpentOnRejects)
{
    svc::ServerConfig config = testServerConfig("budget");
    svc::Server server(config);
    ASSERT_TRUE(server.start().ok());
    server.requestDrain(); // every submit now gets a `draining` reject

    svc::Client client;
    svc::RetryPolicy policy;
    policy.budgetMs = 120;
    policy.submitBackoffMs = 20;
    policy.jitterSeed = 4;
    client.setRetryPolicy(policy);
    ASSERT_TRUE(client.connect(config.socketPath).ok());

    obs::JsonValue submit = *obs::JsonValue::parse(submitLine(81));
    auto t0 = std::chrono::steady_clock::now();
    auto reply = client.submitAndWait(submit);
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    ASSERT_FALSE(reply.ok());
    EXPECT_EQ(reply.error().message, "retry budget exhausted")
        << reply.error().render();
    // The budget is a hard ceiling on failure sleeps; generous margin
    // for the requests themselves.
    EXPECT_LT(elapsed, 2000);
    client.close();
    server.shutdown();
}

TEST(SvcClientRetry, RecvTimeoutTurnsDroppedRepliesIntoTypedFailure)
{
    svc::ServerConfig config = testServerConfig("drop");
    config.svcInjectPlan =
        rt::parseSvcFaultPlan("drop:rate=1,seed=3").value();
    svc::Server server(config);
    ASSERT_TRUE(server.start().ok());

    svc::Client client;
    svc::RetryPolicy policy;
    policy.budgetMs = 200;
    policy.submitBackoffMs = 20;
    policy.recvTimeoutMs = 50; // a swallowed frame is not a hang
    policy.jitterSeed = 4;
    client.setRetryPolicy(policy);
    ASSERT_TRUE(client.connect(config.socketPath).ok());

    obs::JsonValue submit = *obs::JsonValue::parse(submitLine(82));
    auto reply = client.submitAndWait(submit);
    ASSERT_FALSE(reply.ok());
    EXPECT_EQ(reply.error().message, "retry budget exhausted")
        << reply.error().render();

    obs::JsonValue stats = server.statsSnapshot();
    const obs::JsonValue *inject = stats.find("svc_inject");
    ASSERT_NE(inject, nullptr);
    EXPECT_GE(inject->find("frames_dropped")->asUint(), 1u);
    client.close();
    server.shutdown();
}

TEST(SvcClientRetry, DelayedFramesOnlySlowTheJobDown)
{
    svc::ServerConfig config = testServerConfig("delay");
    config.svcInjectPlan =
        rt::parseSvcFaultPlan("delay:rate=1,delay_ms=20,seed=3")
            .value();
    svc::Server server(config);
    ASSERT_TRUE(server.start().ok());

    svc::Client client;
    ASSERT_TRUE(client.connect(config.socketPath).ok());
    obs::JsonValue submit = *obs::JsonValue::parse(submitLine(83));
    auto reply = client.submitAndWait(submit);
    ASSERT_TRUE(reply.ok()) << reply.error().render();
    ASSERT_NE(reply.value().find("result"), nullptr)
        << reply.value().dump();

    obs::JsonValue stats = server.statsSnapshot();
    const obs::JsonValue *inject = stats.find("svc_inject");
    ASSERT_NE(inject, nullptr);
    EXPECT_GE(inject->find("frames_delayed")->asUint(), 1u);
    client.close();
    server.shutdown();
}

TEST(SvcClientRetry, ReconnectsAndResubmitsAfterConnectionReset)
{
    svc::ServerConfig config = testServerConfig("reset");
    // Reset roughly half the reply frames: the client must survive
    // torn connections by reconnecting and resubmitting idempotently.
    config.svcInjectPlan =
        rt::parseSvcFaultPlan("reset:rate=0.5,seed=11").value();
    config.journalDir = scratchDir("reset_journal");
    svc::Server server(config);
    ASSERT_TRUE(server.start().ok());

    svc::Client client;
    svc::RetryPolicy policy;
    policy.submitBackoffMs = 10;
    policy.recvTimeoutMs = 2000;
    policy.jitterSeed = 4;
    client.setRetryPolicy(policy);
    ASSERT_TRUE(client.connect(config.socketPath).ok());

    obs::JsonValue submit = *obs::JsonValue::parse(submitLine(84));
    auto reply = client.submitAndWait(submit, 200);
    ASSERT_TRUE(reply.ok()) << reply.error().render();
    ASSERT_NE(reply.value().find("result"), nullptr)
        << reply.value().dump();

    obs::JsonValue stats = server.statsSnapshot();
    const obs::JsonValue *inject = stats.find("svc_inject");
    ASSERT_NE(inject, nullptr);
    EXPECT_GE(inject->find("frames_reset")->asUint(), 1u);
    // Idempotency held: every retry deduped onto one simulation.
    EXPECT_EQ(counterOf(stats, "svc.sims_executed"), 1u);
    client.close();
    server.shutdown();
}

} // namespace
} // namespace dcfb
