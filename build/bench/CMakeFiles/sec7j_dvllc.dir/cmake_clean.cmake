file(REMOVE_RECURSE
  "CMakeFiles/sec7j_dvllc.dir/sec7j_dvllc.cpp.o"
  "CMakeFiles/sec7j_dvllc.dir/sec7j_dvllc.cpp.o.d"
  "sec7j_dvllc"
  "sec7j_dvllc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec7j_dvllc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
