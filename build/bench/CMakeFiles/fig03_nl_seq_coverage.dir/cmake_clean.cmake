file(REMOVE_RECURSE
  "CMakeFiles/fig03_nl_seq_coverage.dir/fig03_nl_seq_coverage.cpp.o"
  "CMakeFiles/fig03_nl_seq_coverage.dir/fig03_nl_seq_coverage.cpp.o.d"
  "fig03_nl_seq_coverage"
  "fig03_nl_seq_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_nl_seq_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
