#include "sim/fetch.h"

#include "obs/trace.h"
#include "prefetch/btb_prefetch_buffer.h"

namespace dcfb::sim {

using isa::InstrKind;
using workload::TraceEntry;

CoupledFetchEngine::CoupledFetchEngine(
    const FetchConfig &config, workload::TraceWalker &walker_,
    mem::L1iCache &l1i_, frontend::Btb &btb_, frontend::Tage &tage_,
    const workload::ProgramImage &image_,
    prefetch::InstrPrefetcher &prefetcher)
    : FetchEngine(config), walker(walker_), l1i(l1i_), btb(btb_),
      tage(tage_), image(image_), pf(prefetcher)
{
    cFetched = statSet.counter("fe_fetched");
    cIcacheStallCycles = statSet.counter("fe_icache_stall_cycles");
    cBtbStallCycles = statSet.counter("fe_btb_stall_cycles");
    cMispredictStallCycles = statSet.counter("fe_mispredict_stall_cycles");
    cWrongPathBlocks = statSet.counter("fe_wrong_path_blocks");
    hBufferOcc = statSet.histogram("fetch_buffer_occ");
    cBtbRedirects = statSet.lazy("fe_btb_redirects");
    cMispredictRedirects = statSet.lazy("fe_mispredict_redirects");
    cBtbBufferFills = statSet.lazy("fe_btb_buffer_fills");
    cBtbMissTaken = statSet.lazy("fe_btb_miss_taken");
    cBtbMissNotTaken = statSet.lazy("fe_btb_miss_not_taken");
    cCondMispredicts = statSet.lazy("fe_cond_mispredicts");
    cStaleTarget = statSet.lazy("fe_stale_target");
    cIndirectMispredicts = statSet.lazy("fe_indirect_mispredicts");
    cRasMispredicts = statSet.lazy("fe_ras_mispredicts");
    refill();
}

void
CoupledFetchEngine::refill()
{
    while (!look.full())
        look.push(walker.next());
}

StallReason
CoupledFetchEngine::stallReason(Cycle now) const
{
    if (blockedOnFill && now < fillReady)
        return StallReason::ICacheMiss;
    if (now < redirectUntil)
        return redirectReason;
    return StallReason::FetchPipe;
}

void
CoupledFetchEngine::redirect(Cycle now, Cycle penalty, Addr wrong_path_pc,
                             StallReason reason)
{
    redirectUntil = now + penalty;
    redirectReason = reason;
    wrongPathPc = wrong_path_pc;
    wrongPathBlock = kInvalidAddr;
    (reason == StallReason::BtbMissRedirect ? cBtbRedirects
                                            : cMispredictRedirects)
        .add();
}

void
CoupledFetchEngine::wrongPathFetch(Cycle now)
{
    // The frontend keeps fetching down the wrong path until the squash.
    // We model up to one new block touched per cycle; wrong-path
    // accesses really hit the cache/MSHRs (pollution and, at times,
    // accidental prefetching - both real effects).
    if (wrongPathPc == kInvalidAddr)
        return;
    if (!image.contains(wrongPathPc)) {
        wrongPathPc = kInvalidAddr; // ran off mapped code
        return;
    }
    Addr block = blockAlign(wrongPathPc);
    if (block != wrongPathBlock) {
        wrongPathBlock = block;
        l1i.demandAccess(wrongPathPc, now, /*wrong_path=*/true);
        cWrongPathBlocks.add();
    }
    wrongPathPc += cfg.fetchWidth * kInstrBytes;
}

bool
CoupledFetchEngine::handleBranch(const TraceEntry &e, Cycle now)
{
    // Direction prediction for conditionals.
    bool predicted_taken = true;
    if (e.kind == InstrKind::CondBranch) {
        // Note: perfectBtb only removes BTB misses; direction prediction
        // still comes from TAGE (Fig. 17's BTB-infinity is a 32 K-entry
        // BTB, not an oracle).
        predicted_taken = tage.predict(e.pc);
        tage.update(e.pc, e.taken);
    } else {
        tage.updateHistoryUnconditional(e.pc);
    }

    // RAS maintenance.
    Addr ras_target = kInvalidAddr;
    if (e.kind == InstrKind::Call || e.kind == InstrKind::IndirectCall)
        ras.push(e.pc + e.len);
    else if (e.kind == InstrKind::Return)
        ras_target = ras.pop();

    // BTB: identifies the branch and provides the target.
    const frontend::BtbEntry *entry = nullptr;
    frontend::BtbEntry from_buffer;
    if (cfg.perfectBtb) {
        from_buffer = {e.target, e.kind};
        entry = &from_buffer;
    } else {
        entry = btb.lookup(e.pc);
        if (!entry) {
            // Probe the BTB prefetch buffer (Section V.C): a hit moves
            // the entry into the BTB and avoids the miss.
            if (auto *pb = pf.btbPrefetchBuffer()) {
                if (const auto *b = pb->findBranch(e.pc)) {
                    btb.update(e.pc, b->hasTarget ? b->target : e.target,
                               b->kind);
                    from_buffer = {b->hasTarget ? b->target : e.target,
                                   b->kind};
                    entry = &from_buffer;
                    cBtbBufferFills.add();
                    if (obs::Tracing::enabled()) {
                        obs::Tracing::record("btb", now, e.pc,
                                             obs::MissClass::Btb,
                                             obs::MissOutcome::Covered);
                    }
                }
            }
        }
    }

    if (!entry) {
        // The frontend does not know this is a branch.  Fall-through
        // fetch is accidentally correct for a not-taken conditional;
        // anything taken costs a decode-time redirect.
        if (e.taken) {
            cBtbMissTaken.add();
            if (obs::Tracing::enabled()) {
                obs::Tracing::record("btb", now, e.pc, obs::MissClass::Btb,
                                     obs::MissOutcome::Uncovered);
            }
            redirect(now, cfg.decodeRedirectPenalty, e.pc + e.len,
                     StallReason::BtbMissRedirect);
            btb.update(e.pc, e.target, e.kind);
            return true;
        }
        cBtbMissNotTaken.add();
        btb.update(e.pc, e.target, e.kind);
        return false;
    }

    // Known branch: check the predicted direction and target.
    switch (e.kind) {
      case InstrKind::CondBranch:
        if (predicted_taken != e.taken) {
            cCondMispredicts.add();
            Addr wrong = predicted_taken ? entry->target : e.pc + e.len;
            redirect(now, cfg.execRedirectPenalty, wrong,
                     StallReason::MispredictRedirect);
            btb.update(e.pc, e.target, e.kind);
            return true;
        }
        if (e.taken && entry->target != e.target) {
            cStaleTarget.add();
            redirect(now, cfg.execRedirectPenalty, entry->target,
                     StallReason::MispredictRedirect);
            btb.update(e.pc, e.target, e.kind);
            return true;
        }
        return e.taken;
      case InstrKind::Jump:
      case InstrKind::Call:
        if (entry->target != e.target) {
            cStaleTarget.add();
            redirect(now, cfg.decodeRedirectPenalty, entry->target,
                     StallReason::MispredictRedirect);
            btb.update(e.pc, e.target, e.kind);
            return true;
        }
        return true;
      case InstrKind::IndirectCall:
        if (entry->target != e.target) {
            cIndirectMispredicts.add();
            redirect(now, cfg.execRedirectPenalty, entry->target,
                     StallReason::MispredictRedirect);
            btb.update(e.pc, e.target, e.kind);
            return true;
        }
        return true;
      case InstrKind::Return:
        if (ras_target != e.target) {
            cRasMispredicts.add();
            redirect(now, cfg.execRedirectPenalty,
                     ras_target == kInvalidAddr ? e.pc + e.len : ras_target,
                     StallReason::MispredictRedirect);
            return true;
        }
        return true;
      default:
        return false;
    }
}

void
CoupledFetchEngine::cycle(Cycle now)
{
    refill();
    hBufferOcc.sample(fetchBuffer.size());

    if (blockedOnFill) {
        if (now < fillReady) {
            cIcacheStallCycles.add();
            return;
        }
        blockedOnFill = false;
    }

    if (now < redirectUntil) {
        (redirectReason == StallReason::BtbMissRedirect
             ? cBtbStallCycles
             : cMispredictStallCycles)
            .add();
        wrongPathFetch(now);
        return;
    }

    unsigned budget = cfg.fetchWidth;
    while (budget > 0 && fetchBuffer.size() < cfg.fetchBufferEntries) {
        // Copy: pop_front() below invalidates references into the queue,
        // and e is still needed for the branch handling afterwards.
        const TraceEntry e = look.front();

        // Block transition: access the I-cache (VL instructions may
        // straddle two blocks; both must be present).
        Addr first = blockAlign(e.pc);
        Addr last = blockAlign(e.pc + e.len - 1);
        for (Addr block = first; block <= last; block += kBlockBytes) {
            if (block == currentBlock)
                continue;
            if (cfg.perfectL1i) {
                currentBlock = block;
                continue;
            }
            auto res = l1i.demandAccess(block, now);
            currentBlock = block;
            if (!res.hit) {
                blockedOnFill = true;
                fillReady = res.ready;
                cIcacheStallCycles.add();
                return;
            }
        }

        fetchBuffer.push({e, now + cfg.frontendStages});
        pf.onFetchInstr({e.pc, e.len, e.kind, e.taken, e.target}, now);
        look.pop();
        --budget;
        cFetched.add();

        if (e.isBranch()) {
            bool stop = handleBranch(e, now);
            if (stop)
                break;
        }
    }
}

} // namespace dcfb::sim
