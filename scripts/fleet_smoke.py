#!/usr/bin/env python3
"""Fleet smoke test: a dcfb-coord coordinator sharding the full fig16
grid across three dcfb-serve workers over TCP (DESIGN.md section 15).

Phases, in order:

  1. Start a dedicated single-host reference worker (`--jobs 0`, auto
     parallelism) behind a 1-worker coordinator and run the full
     35-cell fig16 grid twice (two seeds).  The merged dcfb-grid-v1
     reports are the byte-identity references, and the first run's
     wall time is the single-host baseline the fleet must beat.
  2. Start three TCP workers, each with its own result cache, behind a
     3-worker coordinator.  Run the same grid cold: the report must be
     byte-identical to the single-host reference, every cell must have
     been simulated (none cached), and every worker must have executed
     at least one simulation.
  3. Run the grid again against the warm fleet: zero simulations —
     every cell is answered from the federated caches — and the report
     bytes are again identical.
  4. Run the grid on a fresh seed and SIGKILL one worker after the
     first cell lands.  The grid must still complete, the coordinator
     must record the death and rebalance the orphaned cells, and the
     merged report must be byte-identical to the single-host reference
     for that seed.
  5. SIGTERM the coordinator and check its final fleet-stats
     accounting, and that every surviving daemon drains with exit 0.

The perf assertion (fleet wall < single-host wall) needs real
parallel headroom, so it is enforced only when the host has at least
two CPUs; on a single-core box it is reported but advisory.

Stdlib only; binaries are found in build/bin (or --bindir).
"""

import argparse
import json
import os
import re
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

PORT_RE = re.compile(r"listening on tcp port (\d+)")


def log(msg):
    print(f"[fleet_smoke] {msg}", flush=True)


def fail(msg):
    print(f"[fleet_smoke] FAIL: {msg}", file=sys.stderr, flush=True)
    sys.exit(1)


class Daemon:
    """One dcfb-serve or dcfb-coord child with its stderr tailed by a
    thread (the announcement lines carry the ephemeral port)."""

    def __init__(self, name, argv):
        self.name = name
        self.proc = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.stderr_lines = []
        self._port = None
        self._port_ready = threading.Event()
        self._reader = threading.Thread(target=self._drain, daemon=True)
        self._reader.start()

    def _drain(self):
        for line in self.proc.stderr:
            self.stderr_lines.append(line.rstrip("\n"))
            m = PORT_RE.search(line)
            if m:
                self._port = int(m.group(1))
                self._port_ready.set()
        self._port_ready.set()  # EOF: unblock waiters even on crash

    def port(self, timeout=15.0):
        if not self._port_ready.wait(timeout) or self._port is None:
            fail(
                f"{self.name} never announced a TCP port; stderr:\n"
                + "\n".join(self.stderr_lines)
            )
        return self._port

    def sigkill(self):
        self.proc.kill()
        self.proc.wait()

    def stop(self, expect_zero=True, timeout=60):
        """SIGTERM, wait, return the drained stdout (final stats)."""
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
        try:
            out, _ = self.proc.communicate(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            fail(f"{self.name} did not drain within {timeout}s")
        self._reader.join(timeout=5)
        if expect_zero and self.proc.returncode != 0:
            fail(
                f"{self.name} exited {self.proc.returncode}; stderr:\n"
                + "\n".join(self.stderr_lines)
            )
        return out


def coord_request(port, doc, on_event=None, timeout=600.0):
    """Send one dcfb-coord-v1 request and collect the streamed events
    until a terminal one ("done", "error", or a plain reply)."""
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as sock:
        sock.settimeout(timeout)
        sock.sendall((json.dumps(doc) + "\n").encode())
        events = []
        reader = sock.makefile("rb")
        for raw in reader:
            event = json.loads(raw)
            events.append(event)
            if on_event:
                on_event(event)
            # A grid streams "accepted" then "cell"s; anything else
            # ("done", "error", or a one-shot reply) ends the exchange.
            if event.get("event") not in ("accepted", "cell"):
                return events
    fail("coordinator closed the stream without a terminal event")


def run_grid(port, seed, on_event=None):
    """Run one full-default fig16 grid; returns (done_event, report
    bytes, wall seconds)."""
    t0 = time.monotonic()
    events = coord_request(port, {"op": "grid", "seed": seed}, on_event)
    wall = time.monotonic() - t0
    done = events[-1]
    if done.get("event") != "done":
        fail(f"grid seed={seed} did not finish: {json.dumps(done)[:500]}")
    report = done.get("report")
    if not isinstance(report, dict):
        fail(f"grid seed={seed} done event carries no report")
    if report.get("schema") != "dcfb-grid-v1":
        fail(f"unexpected report schema: {report.get('schema')}")
    # Canonical bytes for identity checks: the coordinator guarantees
    # the report content is deterministic, so a stable re-encoding is
    # a faithful byte-level comparison.
    blob = json.dumps(report, sort_keys=True).encode()
    return done, blob, wall


def start_worker(bindir, name, cache_dir):
    return Daemon(
        name,
        [
            os.path.join(bindir, "dcfb-serve"),
            "--listen", "127.0.0.1:0",
            "--jobs", "0",
            "--queue", "64",
            "--cache", cache_dir,
            "--retry-after-ms", "25",
            "--metrics-interval-ms", "0",
        ],
    )


def start_coord(bindir, name, workers):
    argv = [
        os.path.join(bindir, "dcfb-coord"),
        "--listen", "127.0.0.1:0",
        "--connect-budget-ms", "2000",
        "--recv-timeout-ms", "10000",
    ]
    for wname, port in workers:
        argv += ["--worker", f"{wname}=127.0.0.1:{port}"]
    return Daemon(name, argv)


def worker_sims(stats_event):
    """Map worker name -> svc.sims_executed from a fleet-stats reply."""
    sims = {}
    for entry in stats_event.get("workers", []):
        counters = entry.get("stats", {}).get("counters", {})
        sims[entry["name"]] = counters.get("svc.sims_executed", 0)
    return sims


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bindir",
        default=os.path.join("build", "bin"),
        help="directory holding dcfb-serve and dcfb-coord",
    )
    args = parser.parse_args()
    bindir = os.path.abspath(args.bindir)
    for binary in ("dcfb-serve", "dcfb-coord"):
        if not os.path.exists(os.path.join(bindir, binary)):
            fail(f"{binary} not found in {bindir}; build first")

    scratch = tempfile.mkdtemp(prefix="dcfb_fleet_smoke_")
    daemons = []
    try:
        # -- phase 1: single-host reference ---------------------------
        ref_worker = start_worker(
            bindir, "ref-worker", os.path.join(scratch, "cache_ref")
        )
        daemons.append(ref_worker)
        ref_coord = start_coord(
            bindir, "ref-coord", [("ref", ref_worker.port())]
        )
        daemons.append(ref_coord)
        ref_port = ref_coord.port()

        log("single-host reference: full fig16 grid, seed 1")
        ref_done, ref_blob, single_wall = run_grid(ref_port, seed=1)
        if ref_done["simulated"] != 35 or ref_done["cached"] != 0:
            fail(
                "reference grid expected 35 simulated / 0 cached cells, "
                f"got {ref_done['simulated']} / {ref_done['cached']}"
            )
        log(f"single-host wall: {single_wall:.2f}s (35 cells, --jobs auto)")

        log("single-host reference: seed 2 (for the worker-kill phase)")
        _, ref_blob_seed2, _ = run_grid(ref_port, seed=2)

        # -- phase 2: cold 3-worker fleet -----------------------------
        workers = []
        for i in range(3):
            worker = start_worker(
                bindir, f"w{i}", os.path.join(scratch, f"cache_w{i}")
            )
            daemons.append(worker)
            workers.append(worker)
        ports = [w.port() for w in workers]
        coord = start_coord(
            bindir, "coord", [(f"w{i}", p) for i, p in enumerate(ports)]
        )
        daemons.append(coord)
        coord_port = coord.port()

        log("cold fleet grid: 3 workers, seed 1")
        cold_done, cold_blob, fleet_wall = run_grid(coord_port, seed=1)
        if cold_done["simulated"] != 35 or cold_done["cached"] != 0:
            fail(
                "cold fleet grid expected 35 simulated / 0 cached, got "
                f"{cold_done['simulated']} / {cold_done['cached']}"
            )
        if cold_blob != ref_blob:
            fail("cold fleet report differs from the single-host report")
        log(f"fleet wall: {fleet_wall:.2f}s; report byte-identical")

        stats = coord_request(coord_port, {"op": "stats"})[-1]
        sims = worker_sims(stats)
        idle = [name for name, n in sims.items() if n == 0]
        if idle:
            fail(f"workers ran no simulations (sharding broken?): {idle}")
        log(f"per-worker simulations: {sims}")

        # -- perf: the fleet must beat the single host ----------------
        # Wall-clock noise can flip a close race, so a loss gets one
        # fresh-seed rerun of both sides before the verdict.  Enforced
        # only with real parallel headroom (>= 2 CPUs).
        cpus = os.cpu_count() or 1
        if fleet_wall >= single_wall and cpus >= 2:
            log("perf: close race, re-measuring both sides on seed 3")
            _, _, single_wall = run_grid(ref_port, seed=3)
            _, _, fleet_wall = run_grid(coord_port, seed=3)
        verdict = f"fleet {fleet_wall:.2f}s vs single-host {single_wall:.2f}s"
        if fleet_wall < single_wall:
            log(f"perf: {verdict} -- fleet wins")
        elif cpus < 2:
            log(f"perf (advisory, {cpus} cpu): {verdict}")
        else:
            fail(f"fleet did not beat single-host: {verdict}")

        ref_coord.stop()
        daemons.remove(ref_coord)
        ref_worker.stop()
        daemons.remove(ref_worker)

        # -- phase 3: warm fleet, federated cache hits ----------------
        log("warm fleet grid: same seed, expecting zero simulations")
        warm_done, warm_blob, warm_wall = run_grid(coord_port, seed=1)
        if warm_done["simulated"] != 0:
            fail(
                "warm fleet grid re-simulated "
                f"{warm_done['simulated']} cells; federated cache broken"
            )
        if warm_done["cached"] != 35:
            fail(f"warm grid served {warm_done['cached']}/35 from cache")
        if warm_blob != ref_blob:
            fail("warm fleet report differs from the cold report")
        log(f"warm wall: {warm_wall:.2f}s, all 35 cells from cache")

        # -- phase 4: SIGKILL one worker mid-grid ---------------------
        log("kill phase: seed 2 grid, SIGKILL w0 after the first cell")
        killed = threading.Event()

        def kill_on_first_cell(event):
            if event.get("event") == "cell" and not killed.is_set():
                killed.set()
                workers[0].sigkill()
                log("w0 SIGKILLed")

        kill_done, kill_blob, _ = run_grid(
            coord_port, seed=2, on_event=kill_on_first_cell
        )
        if not killed.is_set():
            fail("kill phase never saw a cell event")
        if kill_done["worker_deaths"] < 1:
            fail("coordinator did not record the worker death")
        if kill_done["rebalanced"] < 1:
            fail("no cells were rebalanced off the dead worker")
        if kill_blob != ref_blob_seed2:
            fail("post-kill report differs from the single-host report")
        log(
            f"grid survived: {kill_done['worker_deaths']} death(s), "
            f"{kill_done['rebalanced']} cell(s) rebalanced"
        )

        stats = coord_request(coord_port, {"op": "stats"})[-1]
        alive = [e["name"] for e in stats["workers"] if e["alive"]]
        if sorted(alive) != ["w1", "w2"]:
            fail(f"expected w1+w2 alive after the kill, got {alive}")

        # -- phase 5: drain + final accounting ------------------------
        out = coord.stop()
        daemons.remove(coord)
        final = json.loads(out)
        fleet = final.get("fleet", {})
        # w0's counters died with it; the survivors alone must account
        # for at least the rebalanced share of the seed-2 grid.
        if fleet.get("sims_executed", 0) < kill_done["rebalanced"]:
            fail(f"implausible final fleet accounting: {fleet}")
        log(f"coordinator drained; fleet stats: {fleet}")

        for worker in workers[1:]:
            worker.stop()
            daemons.remove(worker)
        daemons.remove(workers[0])  # already SIGKILLed

        log("OK")
    finally:
        for daemon in daemons:
            if daemon.proc.poll() is None:
                daemon.proc.kill()
                daemon.proc.wait()
        shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    main()
