# Empty compiler generated dependencies file for fig15_fscr.
# This may be replaced when dependencies are built.
