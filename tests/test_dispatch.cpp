/**
 * @file
 * Dispatch-equivalence tests (DESIGN.md section 14): the
 * preset-specialized System::step path and the generic
 * (virtual-dispatch) path forced by SystemConfig::genericStep must
 * produce bit-identical RunResults — same counters, same histograms,
 * same serialized bytes — across the full 18-preset matrix, serially
 * and on a 4-worker pool.
 */

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "workload/profiles.h"

namespace dcfb::sim {
namespace {

std::vector<Preset>
allPresets()
{
    return {Preset::Baseline,   Preset::NL,
            Preset::N2L,        Preset::N4L,
            Preset::N8L,        Preset::N4LPlain,
            Preset::SN4L,       Preset::DisOnly,
            Preset::SN4LDis,    Preset::SN4LDisBtb,
            Preset::ClassicDis, Preset::Confluence,
            Preset::Boomerang,  Preset::Shotgun,
            Preset::PerfectL1i, Preset::PerfectL1iBtb,
            Preset::Fdip,       Preset::MicroBtb};
}

/** Small cells so the 18-preset matrix stays cheap. */
void
shrink(SystemConfig &cfg)
{
    cfg.profile.numFunctions = 24;
    cfg.profile.dataFootprint = 1ull << 20;
    cfg.functionalWarmInstrs = 40000;
}

RunWindows
tinyWindows()
{
    return RunWindows{4000, 6000};
}

SystemConfig
tinyConfig(Preset preset, bool generic)
{
    SystemConfig cfg =
        makeConfig(workload::serverProfile("Web (Apache)"), preset);
    shrink(cfg);
    cfg.genericStep = generic;
    return cfg;
}

TEST(DispatchEquivalence, GenericMatchesSpecializedSerially)
{
    for (Preset preset : allPresets()) {
        RunResult specialized =
            simulate(tinyConfig(preset, /*generic=*/false),
                     tinyWindows());
        RunResult generic =
            simulate(tinyConfig(preset, /*generic=*/true),
                     tinyWindows());
        // Structural equality (counters, histograms, identity) ...
        EXPECT_EQ(specialized, generic) << presetName(preset);
        // ... and byte-identical serialization, the golden-corpus
        // currency.
        EXPECT_EQ(toJson(specialized).dump(2), toJson(generic).dump(2))
            << presetName(preset);
    }
}

TEST(DispatchEquivalence, GenericMatchesSpecializedOnFourWorkers)
{
    const std::vector<std::string> workloads = {"Web (Apache)"};
    auto hook = [](SystemConfig &cfg) {
        shrink(cfg);
        cfg.genericStep = false;
    };
    auto generic_hook = [](SystemConfig &cfg) {
        shrink(cfg);
        cfg.genericStep = true;
    };

    ExperimentGrid specialized(allPresets(), tinyWindows(), hook);
    specialized.run(workloads, 4);
    ExperimentGrid generic(allPresets(), tinyWindows(), generic_hook);
    generic.run(workloads, 4);

    for (Preset preset : allPresets()) {
        const auto &a = specialized.at(workloads[0], preset);
        const auto &b = generic.at(workloads[0], preset);
        EXPECT_EQ(a, b) << presetName(preset);
        EXPECT_EQ(toJson(a).dump(2), toJson(b).dump(2))
            << presetName(preset);
    }
    EXPECT_EQ(specialized.execReport().jobs, 4u);
    EXPECT_EQ(generic.execReport().jobs, 4u);
}

} // namespace
} // namespace dcfb::sim
