/**
 * @file
 * Instruction-prefetcher interface.
 *
 * A prefetcher observes the L1i (via the L1iListener callbacks) and the
 * fetch stream (via onFetchInstr), performs per-cycle work in tick(),
 * and issues prefetches through the L1iCache it is bound to.  Coupled-
 * frontend prefetchers (NL/NXL, SN4L+Dis+BTB, Confluence) implement this
 * interface; the BTB-directed baselines (Boomerang, Shotgun) are fetch-
 * engine-integrated and live in their own classes.
 */

#ifndef DCFB_PREFETCH_PREFETCHER_H
#define DCFB_PREFETCH_PREFETCHER_H

#include <cstdint>
#include <string>

#include "common/types.h"
#include "isa/encoding.h"
#include "mem/l1i.h"

namespace dcfb::prefetch {

/** One instruction as seen by the fetch engine (correct path). */
struct FetchedInstr
{
    Addr pc = 0;
    std::uint8_t len = 0;
    isa::InstrKind kind = isa::InstrKind::Alu;
    bool taken = false;
    Addr target = kInvalidAddr;
};

class BtbPrefetchBuffer; // forward: only SN4L+Dis+BTB provides one

/**
 * Base class for instruction prefetchers.
 */
class InstrPrefetcher : public mem::L1iListener
{
  public:
    ~InstrPrefetcher() override = default;

    /** Human-readable identifier for reports. */
    virtual std::string name() const = 0;

    /** Per-cycle work (queue draining, chained prefetches). */
    virtual void tick(Cycle now) { (void)now; }

    /** Correct-path fetch notification (per instruction). */
    virtual void onFetchInstr(const FetchedInstr &instr, Cycle now)
    {
        (void)instr;
        (void)now;
    }

    /** Metadata storage the prefetcher adds, in bits (Table II audit). */
    virtual std::uint64_t storageBits() const { return 0; }

    /** The BTB prefetch buffer, when this prefetcher prefills one. */
    virtual BtbPrefetchBuffer *btbPrefetchBuffer() { return nullptr; }
};

/** A prefetcher that never prefetches (the baseline). */
class NullPrefetcher final : public InstrPrefetcher
{
  public:
    std::string name() const override { return "baseline"; }
};

} // namespace dcfb::prefetch

#endif // DCFB_PREFETCH_PREFETCHER_H
