#include "noc/mesh.h"

#include <cassert>
#include <cstdlib>

namespace dcfb::noc {

MeshModel::MeshModel(const MeshConfig &config)
    : cfg(config), linkFree(std::size_t{config.dim} * config.dim * NumDirs, 0),
      rng(config.seed)
{
    assert(cfg.dim >= 1);
    assert(cfg.bgUtilization >= 0.0 && cfg.bgUtilization < 0.95);
}

std::size_t
MeshModel::linkIndex(unsigned tile, Dir dir) const
{
    return std::size_t{tile} * NumDirs + dir;
}

unsigned
MeshModel::hops(unsigned src, unsigned dst) const
{
    int sx = static_cast<int>(src % cfg.dim), sy = static_cast<int>(src / cfg.dim);
    int dx = static_cast<int>(dst % cfg.dim), dy = static_cast<int>(dst / cfg.dim);
    return static_cast<unsigned>(std::abs(sx - dx) + std::abs(sy - dy));
}

Cycle
MeshModel::zeroLoadLatency(unsigned src, unsigned dst) const
{
    // Every hop costs router + link; injection at the source router also
    // pays one router pass even for local delivery.
    unsigned h = hops(src, dst);
    return cfg.routerCycles +
        Cycle{h} * (cfg.routerCycles + cfg.linkCycles);
}

Cycle
MeshModel::crossLink(std::size_t link, Cycle at, unsigned flits)
{
    Cycle start = std::max(at, linkFree[link]);
    // Background traffic: each of the other tiles keeps this link busy a
    // fraction of the time.  Model it as a geometric number of stolen
    // cycles in front of us with success probability (1 - u).
    double u = cfg.bgUtilization;
    if (u > 0.0) {
        while (rng.chance(u))
            ++start;
    }
    // The link stays busy for the whole packet, but the head flit is
    // through after one link cycle (wormhole); the tail's serialization
    // shows up as queueing for the *next* packet on this link.
    linkFree[link] = start + flits * cfg.linkCycles;
    statSet.add("noc_link_crossings");
    statSet.add("noc_queue_cycles", start - at);
    return start + cfg.linkCycles;
}

Cycle
MeshModel::traverse(unsigned src, unsigned dst, Cycle now, unsigned flits)
{
    assert(src < numTiles() && dst < numTiles());
    statSet.add("noc_packets");
    statSet.add("noc_flits", flits);

    unsigned x = src % cfg.dim, y = src / cfg.dim;
    unsigned tx = dst % cfg.dim, ty = dst / cfg.dim;
    Cycle t = now + cfg.routerCycles; // injection router pass

    // XY routing, wormhole-style: the head flit pays router+link per
    // hop (plus any link queueing); the body's serialization delay is
    // paid once at the destination, while each link stays booked for
    // the full packet length.
    while (x != tx) {
        Dir dir = x < tx ? East : West;
        unsigned tile = y * cfg.dim + x;
        t = crossLink(linkIndex(tile, dir), t, flits) + cfg.routerCycles;
        x = x < tx ? x + 1 : x - 1;
    }
    while (y != ty) {
        Dir dir = y < ty ? South : North;
        unsigned tile = y * cfg.dim + x;
        t = crossLink(linkIndex(tile, dir), t, flits) + cfg.routerCycles;
        y = y < ty ? y + 1 : y - 1;
    }
    statSet.add("noc_total_latency", t - now);
    return t;
}

} // namespace dcfb::noc
