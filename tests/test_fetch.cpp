/**
 * @file
 * Tests for the fetch engines: coupled-frontend redirect behaviour
 * (BTB misses, mispredicts, wrong-path fetching), decoupled-engine FTQ
 * dynamics (BPU lookahead, reactive stalls, footprint construction),
 * and VL-ISA end-to-end runs.
 */

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "sim/system.h"
#include "workload/profiles.h"

namespace dcfb::sim {
namespace {

SystemConfig
smallConfig(Preset preset, const std::string &workload = "Web Frontend")
{
    SystemConfig cfg = makeConfig(workload::serverProfile(workload), preset);
    cfg.functionalWarmInstrs = 300000;
    return cfg;
}

RunWindows
tiny()
{
    return RunWindows{20000, 40000};
}

TEST(CoupledFetch, BtbMissesCauseRedirects)
{
    // With a tiny BTB, taken branches frequently miss and each miss must
    // produce a decode-time redirect plus wrong-path fetches.
    auto cfg = smallConfig(Preset::Baseline);
    cfg.btbEntries = 64;
    cfg.functionalWarmInstrs = 0; // keep the BTB cold
    auto res = simulate(cfg, tiny());
    EXPECT_GT(res.stat("fe.fe_btb_redirects"), 100u);
    EXPECT_GT(res.stat("fe.fe_btb_stall_cycles"), 500u);
    EXPECT_GT(res.stat("fe.fe_wrong_path_blocks"), 50u);
    EXPECT_GT(res.stat("l1i.l1i_wp_accesses"), 50u);
}

TEST(CoupledFetch, BiggerBtbReducesRedirects)
{
    auto small = smallConfig(Preset::Baseline);
    small.btbEntries = 128;
    auto big = smallConfig(Preset::Baseline);
    big.btbEntries = 16384;
    auto rs = simulate(small, tiny());
    auto rb = simulate(big, tiny());
    EXPECT_LT(rb.stat("fe.fe_btb_redirects"),
              rs.stat("fe.fe_btb_redirects"));
    EXPECT_GE(rb.ipc(), rs.ipc());
}

TEST(CoupledFetch, MispredictsProduceStalls)
{
    auto res = simulate(smallConfig(Preset::Baseline), tiny());
    EXPECT_GT(res.stat("fe.fe_cond_mispredicts") +
                  res.stat("fe.fe_indirect_mispredicts"),
              0u);
    EXPECT_GT(res.stat("fe.fe_mispredict_stall_cycles"), 0u);
}

TEST(CoupledFetch, PerfectBtbHasNoBtbRedirects)
{
    auto res = simulate(smallConfig(Preset::PerfectL1iBtb), tiny());
    EXPECT_EQ(res.stat("fe.fe_btb_redirects"), 0u);
    EXPECT_EQ(res.stat("fe.fe_btb_miss_taken"), 0u);
}

TEST(CoupledFetch, FetchedMatchesDispatched)
{
    auto res = simulate(smallConfig(Preset::Baseline), tiny());
    // Every dispatched instruction was fetched (plus fetch-buffer
    // residue at the end of the run).
    EXPECT_GE(res.stat("fe.fe_fetched") + 64, res.stat("be.dispatched"));
    EXPECT_GT(res.instructions, 1000u);
}

TEST(DecoupledFetch, BoomerangBbMissesStallBpu)
{
    auto cfg = smallConfig(Preset::Boomerang, "Web (Apache)");
    cfg.boomerangBtbEntries = 256; // force misses
    auto res = simulate(cfg, tiny());
    EXPECT_GT(res.stat("fe.boomerang_bbbtb_miss"), 50u);
    EXPECT_GT(res.stat("fe.bpu_stall_cycles"), 100u);
}

TEST(DecoupledFetch, BoomerangPrefillsFromPrefetchedBlocks)
{
    auto res = simulate(smallConfig(Preset::Boomerang, "Web (Apache)"),
                        tiny());
    EXPECT_GT(res.stat("fe.boomerang_prefill_entries"), 0u);
}

TEST(DecoupledFetch, ShotgunFootprintsEnableRegionPrefetch)
{
    auto res = simulate(smallConfig(Preset::Shotgun, "Web (Apache)"),
                        tiny());
    EXPECT_GT(res.stat("fe.sg_footprint_prefetches"), 0u);
    // Entries restored by prefill skip region prefetch (Section III).
    EXPECT_GT(res.stat("sg.ubtb_footprint_misses"), 0u);
}

TEST(DecoupledFetch, ShotgunSmallerUbtbMoreFootprintMisses)
{
    auto big = smallConfig(Preset::Shotgun, "Web (Apache)");
    auto small = smallConfig(Preset::Shotgun, "Web (Apache)");
    small.shotgunBtb.ubtbEntries = 192;
    small.shotgunBtb.ubtbAssoc = 6;
    auto rb = simulate(big, tiny());
    auto rs = simulate(small, tiny());
    double big_ratio = rb.ratio("sg.ubtb_footprint_misses",
                                "sg.ubtb_lookups");
    double small_ratio = rs.ratio("sg.ubtb_footprint_misses",
                                  "sg.ubtb_lookups");
    EXPECT_GT(small_ratio, big_ratio);
}

TEST(DecoupledFetch, IndirectTargetMispredictsCharged)
{
    auto res = simulate(smallConfig(Preset::Shotgun, "Web (Apache)"),
                        tiny());
    // The driver's indirect calls change targets; the BPU must pay.
    EXPECT_GT(res.stat("fe.bpu_target_mispredicts"), 0u);
    EXPECT_GT(res.stat("fe.bpu_wrong_path_prefetches"), 0u);
}

TEST(DecoupledFetch, FtqPushesCoverFetchedInstructions)
{
    auto res = simulate(smallConfig(Preset::Boomerang, "Web (Apache)"),
                        tiny());
    EXPECT_GT(res.stat("fe.ftq_pushes"), 0u);
    EXPECT_GT(res.stat("fe.fe_fetched"), 1000u);
}

TEST(VlIsa, EndToEndRunsWithFootprints)
{
    auto profile = workload::serverProfile("Web Frontend", true);
    auto cfg = makeConfig(profile, Preset::SN4LDisBtb);
    cfg.functionalWarmInstrs = 300000;
    auto res = simulate(cfg, tiny());
    EXPECT_GT(res.ipc(), 0.2);
    EXPECT_GT(res.stat("llc.bf_branches_recorded"), 0u);
    EXPECT_GT(res.stat("llc.bf_fetch_attempts"), 0u);
    // Footprint-guided prefill actually happened.
    EXPECT_GT(res.stat("pf.btb_prefill_blocks"), 0u);
}

TEST(VlIsa, DvLlcActivatesHolders)
{
    auto profile = workload::serverProfile("Web Frontend", true);
    auto cfg = makeConfig(profile, Preset::SN4LDisBtb);
    cfg.functionalWarmInstrs = 300000;
    auto res = simulate(cfg, tiny());
    EXPECT_GT(res.stat("llc.dvllc_holder_activations"), 0u);
}

TEST(VlIsa, BaselineComparableToFixedLength)
{
    // The VL flavour of a workload should behave in the same performance
    // ballpark as the fixed-length one (sanity, not equality).
    auto fl = simulate(smallConfig(Preset::Baseline), tiny());
    auto profile = workload::serverProfile("Web Frontend", true);
    auto cfg = makeConfig(profile, Preset::Baseline);
    cfg.functionalWarmInstrs = 300000;
    auto vl = simulate(cfg, tiny());
    EXPECT_GT(vl.ipc(), fl.ipc() * 0.4);
    EXPECT_LT(vl.ipc(), fl.ipc() * 2.5);
}

/** Property sweep: every preset runs, retires instructions, and keeps
 *  the stall taxonomy within the cycle budget. */
class AllPresets : public ::testing::TestWithParam<Preset>
{};

TEST_P(AllPresets, RunsAndAccountsCycles)
{
    auto res = simulate(smallConfig(GetParam()), tiny());
    EXPECT_GT(res.instructions, 1000u);
    std::uint64_t stalls = res.stat("sim.stall_backend") +
        res.stat("sim.stall_frontend") + res.stat("sim.stall_mispredict") +
        res.stat("sim.stall_other") + res.stat("sim.dispatch_active_cycles");
    EXPECT_LE(stalls, res.cycles);
    EXPECT_GE(stalls, res.cycles * 9 / 10);
}

INSTANTIATE_TEST_SUITE_P(
    Presets, AllPresets,
    ::testing::Values(Preset::Baseline, Preset::NL, Preset::N2L,
                      Preset::N4L, Preset::N8L, Preset::N4LPlain,
                      Preset::SN4L, Preset::DisOnly, Preset::SN4LDis,
                      Preset::SN4LDisBtb, Preset::ClassicDis,
                      Preset::Confluence, Preset::Boomerang,
                      Preset::Shotgun, Preset::PerfectL1i,
                      Preset::PerfectL1iBtb),
    [](const ::testing::TestParamInfo<Preset> &info) {
        std::string n = presetName(info.param);
        for (char &c : n) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return n;
    });

} // namespace
} // namespace dcfb::sim
