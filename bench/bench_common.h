/**
 * @file
 * Shared helpers for the per-figure bench harnesses.
 *
 * Each bench binary regenerates one table or figure of the paper: same
 * rows/series, measured on the synthetic server workloads.  Absolute
 * numbers differ from the paper's testbed; EXPERIMENTS.md records the
 * paper-vs-measured comparison.
 */

#ifndef DCFB_BENCH_COMMON_H
#define DCFB_BENCH_COMMON_H

#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "workload/profiles.h"

namespace dcfb::bench {

/** Bench-wide run windows (shorter than the tests' defaults to keep a
 *  full sweep over every bench binary tractable on one core). */
inline sim::RunWindows
windows()
{
    return sim::RunWindows{150000, 150000};
}

/** The three workloads used for parameter sweeps (largest, middle,
 *  smallest footprint) when a full 7-workload grid would be excessive. */
inline std::vector<std::string>
sweepWorkloads()
{
    return {"OLTP (DB A)", "Web (Apache)", "Web Frontend"};
}

/** All seven workloads, paper order. */
inline std::vector<std::string>
allWorkloads()
{
    return workload::serverWorkloadNames();
}

/** Print the standard bench banner. */
inline void
banner(const char *figure, const char *claim)
{
    std::printf("%s\n  paper: %s\n", figure, claim);
}

} // namespace dcfb::bench

#endif // DCFB_BENCH_COMMON_H
