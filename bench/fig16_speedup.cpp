/**
 * @file
 * Figure 16: performance of the evaluated designs over the
 * no-prefetcher baseline.  Paper: SN4L+Dis+BTB 19 % average (7 % Web
 * Frontend to 50 % Media Streaming), 5 % over Shotgun on average and
 * 16 % on OLTP (DB A); Confluence wins only on OLTP (DB A).
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace dcfb;
    bench::Harness h(argc, argv, "Fig. 16 - speedup over no-prefetcher baseline",
                  "ours 1.19 avg (1.07-1.50); +5% vs Shotgun, +16% on DB A");

    std::vector<sim::Preset> designs = {
        sim::Preset::NL, sim::Preset::SN4LDisBtb, sim::Preset::Shotgun,
        sim::Preset::Confluence};
    std::vector<sim::Preset> all = designs;
    all.push_back(sim::Preset::Baseline);
    sim::ExperimentGrid grid(all, bench::windows());
    grid.run();

    sim::Table table(
        {"workload", "NL", "SN4L+Dis+BTB", "Shotgun", "Confluence"});
    for (const auto &name : grid.workloads()) {
        const auto &base = grid.at(name, sim::Preset::Baseline);
        std::vector<std::string> row{name};
        for (auto d : designs) {
            row.push_back(
                sim::Table::num(sim::speedup(grid.at(name, d), base), 3));
        }
        table.addRow(row);
    }
    std::vector<std::string> avg{"GeoMean"};
    for (auto d : designs) {
        avg.push_back(sim::Table::num(
            grid.gmeanSpeedup(d, sim::Preset::Baseline), 3));
    }
    table.addRow(avg);
    h.report(table, "Speedup over baseline without instruction/BTB prefetch");

    double ours = grid.gmeanSpeedup(sim::Preset::SN4LDisBtb,
                                    sim::Preset::Baseline);
    double shotgun =
        grid.gmeanSpeedup(sim::Preset::Shotgun, sim::Preset::Baseline);
    std::printf("\nSN4L+Dis+BTB over Shotgun (avg): %.1f%%\n",
                (ours / shotgun - 1.0) * 100.0);
    h.note("sn4l_over_shotgun_avg_pct", (ours / shotgun - 1.0) * 100.0);
    const auto &dba_ours = grid.at("OLTP (DB A)", sim::Preset::SN4LDisBtb);
    const auto &dba_sg = grid.at("OLTP (DB A)", sim::Preset::Shotgun);
    std::printf("SN4L+Dis+BTB over Shotgun (OLTP DB A): %.1f%%\n",
                (dba_ours.ipc() / dba_sg.ipc() - 1.0) * 100.0);
    h.note("sn4l_over_shotgun_dba_pct",
           (dba_ours.ipc() / dba_sg.ipc() - 1.0) * 100.0);
    return 0;
}
