# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig09_bf_per_set.
