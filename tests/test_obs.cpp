/**
 * @file
 * Tests for the observability subsystem: stat-registry ID interning,
 * log2 histogram bucket edges, JSON round-trips (parser, RunResult),
 * and trace on/off parity of the final counters.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "workload/profiles.h"

namespace dcfb {
namespace {

// ---------------------------------------------------------------- registry

TEST(StatRegistry, CounterInterningIsStable)
{
    obs::StatRegistry reg;
    obs::Counter a = reg.counter("alpha");
    obs::Counter b = reg.counter("beta");
    // Re-registering the same name must return the same slot.
    obs::Counter a2 = reg.counter("alpha");
    a.add(3);
    a2.add(4);
    b.add(1);
    EXPECT_EQ(reg.get("alpha"), 7u);
    EXPECT_EQ(reg.get("beta"), 1u);
    EXPECT_EQ(reg.counterIndex("alpha"), reg.counterIndex("alpha"));
    EXPECT_NE(reg.counterIndex("alpha"), reg.counterIndex("beta"));
}

TEST(StatRegistry, HandlesSurviveRegistryGrowth)
{
    obs::StatRegistry reg;
    obs::Counter first = reg.counter("first");
    // Force many registrations; the early handle must stay valid (the
    // registry's slots live in a deque, so addresses never move).
    for (int i = 0; i < 1000; ++i)
        reg.counter("c" + std::to_string(i)).add(1);
    first.add(5);
    EXPECT_EQ(reg.get("first"), 5u);
    EXPECT_EQ(reg.get("c999"), 1u);
}

TEST(StatRegistry, DefaultCounterDiscards)
{
    obs::Counter c;  // not registered anywhere
    c.add(42);       // must not crash; value goes to the discard slot
    obs::StatRegistry reg;
    EXPECT_EQ(reg.counters().size(), 0u);
}

TEST(StatRegistry, ResetZeroesCountersAndHistograms)
{
    obs::StatRegistry reg;
    obs::Counter c = reg.counter("n");
    obs::Histogram h = reg.histogram("h");
    c.add(9);
    h.sample(16);
    reg.reset();
    EXPECT_EQ(reg.get("n"), 0u);
    auto snap = reg.histograms().at("h");
    EXPECT_EQ(snap.count, 0u);
    EXPECT_EQ(snap.sum, 0u);
}

// --------------------------------------------------------------- histogram

TEST(Histogram, Log2BucketEdges)
{
    // Bucket 0 holds only value 0; bucket i (i >= 1) holds
    // [2^(i-1), 2^i - 1].
    EXPECT_EQ(obs::histBucket(0), 0u);
    EXPECT_EQ(obs::histBucket(1), 1u);
    EXPECT_EQ(obs::histBucket(2), 2u);
    EXPECT_EQ(obs::histBucket(3), 2u);
    EXPECT_EQ(obs::histBucket(4), 3u);
    for (unsigned k = 1; k < 63; ++k) {
        std::uint64_t pow = 1ull << k;
        EXPECT_EQ(obs::histBucket(pow), k + 1) << "2^" << k;
        EXPECT_EQ(obs::histBucket(pow - 1), k) << "2^" << k << "-1";
        EXPECT_EQ(obs::histBucket(pow + 1), k + 1) << "2^" << k << "+1";
    }
    EXPECT_EQ(obs::histBucket(~0ull), 64u);

    // Bounds are consistent with the bucket function.
    for (unsigned i = 0; i < obs::kHistBuckets; ++i) {
        EXPECT_EQ(obs::histBucket(obs::histBucketLow(i)), i);
        EXPECT_EQ(obs::histBucket(obs::histBucketHigh(i)), i);
    }
}

TEST(Histogram, SnapshotStatsAndMerge)
{
    obs::StatRegistry reg;
    obs::Histogram h = reg.histogram("lat");
    h.sample(0);
    h.sample(1);
    h.sample(7);
    auto snap = reg.histograms().at("lat");
    EXPECT_EQ(snap.count, 3u);
    EXPECT_EQ(snap.sum, 8u);
    EXPECT_EQ(snap.max, 7u);
    EXPECT_DOUBLE_EQ(snap.mean(), 8.0 / 3.0);

    obs::HistogramSnapshot merged;
    merged.merge(snap);
    merged.merge(snap);
    EXPECT_EQ(merged.count, 6u);
    EXPECT_EQ(merged.sum, 16u);
    EXPECT_EQ(merged.max, 7u);
}

// -------------------------------------------------------------------- json

TEST(Json, ParseRoundTripsBasicDocument)
{
    const char *text =
        R"({"a": 1, "b": [true, null, "x\n\"y\""], "c": {"d": 2.5}})";
    auto parsed = obs::JsonValue::parse(text);
    ASSERT_TRUE(parsed.has_value());
    auto reparsed = obs::JsonValue::parse(parsed->dump());
    ASSERT_TRUE(reparsed.has_value());
    EXPECT_EQ(*parsed, *reparsed);
    EXPECT_EQ(parsed->find("a")->asUint(), 1u);
    EXPECT_EQ(parsed->find("b")->items().size(), 3u);
}

TEST(Json, Uint64RoundTripsExactly)
{
    obs::JsonValue v = obs::JsonValue::object();
    v["big"] = std::uint64_t{18446744073709551615ull};
    auto parsed = obs::JsonValue::parse(v.dump());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("big")->asUint(), 18446744073709551615ull);
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_FALSE(obs::JsonValue::parse("{").has_value());
    EXPECT_FALSE(obs::JsonValue::parse("[1,]").has_value());
    EXPECT_FALSE(obs::JsonValue::parse("\"unterminated").has_value());
    EXPECT_FALSE(obs::JsonValue::parse("{\"a\":1} trailing").has_value());
}

TEST(Json, RunResultRoundTrips)
{
    sim::RunResult res;
    res.workload = "Web (Apache)";
    res.design = "SN4L+Dis+BTB";
    res.cycles = 60000;
    res.instructions = 54321;
    res.stats["l1i.l1i_misses"] = 1234;
    res.stats["sim.stall_frontend"] = 999;
    obs::HistogramSnapshot snap;
    snap.count = 3;
    snap.sum = 8;
    snap.max = 7;
    snap.buckets = {{0, 1}, {1, 1}, {3, 1}};
    res.hists["l1i.miss_latency"] = snap;

    auto json = sim::toJson(res);
    auto parsed = obs::JsonValue::parse(json.dump(2));
    ASSERT_TRUE(parsed.has_value());
    auto back = sim::runResultFromJson(*parsed);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, res);
}

TEST(Json, TableJsonMatchesTextCells)
{
    sim::Table table({"workload", "metric"});
    table.addRow({"Web (Apache)", sim::Table::pct(0.123456)});
    auto json = table.toJson("t");
    const auto &rows = json.find("rows")->items();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].find("metric")->asString(), "12.3%");
}

// ------------------------------------------------------------------- trace

sim::SystemConfig
traceTestConfig()
{
    auto cfg = sim::makeConfig(workload::serverProfile("Web (Apache)"),
                               sim::Preset::SN4LDisBtb);
    cfg.functionalWarmInstrs = 200000;
    return cfg;
}

TEST(Trace, OnOffParityOfFinalCounters)
{
    sim::RunWindows windows{20000, 30000};

    ASSERT_FALSE(obs::Tracing::sinkOpen());
    auto off = sim::simulate(traceTestConfig(), windows);

    std::string path = ::testing::TempDir() + "dcfb_trace_parity.jsonl";
    ASSERT_TRUE(obs::Tracing::open(path));
    auto on = sim::simulate(traceTestConfig(), windows);
    obs::Tracing::close();
    ASSERT_FALSE(obs::Tracing::sinkOpen());

    // Tracing must be purely observational: identical counters,
    // histograms, and derived metrics with the sink on or off.
    EXPECT_EQ(on, off);

    // The stream itself must be valid JSONL with the expected fields.
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    std::size_t records = 0, misses = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        auto v = obs::JsonValue::parse(line);
        ASSERT_TRUE(v.has_value()) << line;
        ++records;
        if (const auto *cls = v->find("class")) {
            ++misses;
            std::string c = cls->asString();
            EXPECT_TRUE(c == "seq" || c == "disc" || c == "btb" || c == "-")
                << c;
            ASSERT_NE(v->find("outcome"), nullptr);
            ASSERT_NE(v->find("cycle"), nullptr);
        }
    }
    EXPECT_GT(records, 0u);
    EXPECT_GT(misses, 0u);
    std::remove(path.c_str());
}

TEST(Trace, ChromeFormatIsValidJson)
{
    std::string path = ::testing::TempDir() + "dcfb_trace_chrome.json";
    ASSERT_TRUE(obs::Tracing::open(path));
    auto res = sim::simulate(traceTestConfig(), sim::RunWindows{5000, 10000});
    obs::Tracing::close();
    EXPECT_GT(res.instructions, 0u);

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::stringstream buf;
    buf << in.rdbuf();
    auto v = obs::JsonValue::parse(buf.str());
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->kind(), obs::JsonValue::Kind::Array);
    EXPECT_GT(v->items().size(), 0u);
    std::remove(path.c_str());
}

TEST(Trace, BoundedStreamCountsDrops)
{
    std::string path = ::testing::TempDir() + "dcfb_trace_bounded.jsonl";
    obs::Tracing::Config cfg;
    cfg.path = path;
    cfg.maxEvents = 10;
    ASSERT_TRUE(obs::Tracing::open(cfg));
    sim::simulate(traceTestConfig(), sim::RunWindows{5000, 10000});
    EXPECT_LE(obs::Tracing::emitted(), 10u);
    EXPECT_GT(obs::Tracing::dropped(), 0u);
    obs::Tracing::close();
    std::remove(path.c_str());
}

} // namespace
} // namespace dcfb
