/**
 * @file
 * Forward-progress watchdog for the simulation loop.
 *
 * The cycle loop runs open-loop: a wedged FTQ or a leaked MSHR would
 * spin silently to the cycle limit.  The watchdog is fed the machine's
 * retire and fetch counters at every integrity sweep; when either shows
 * no progress for longer than the configured window, it trips with a
 * typed ErrorKind::Watchdog error.  The simulation driver attaches a
 * structured machine-state snapshot (queues, MSHRs, in-flight
 * prefetches) before failing the run -- see sim::simulate().
 *
 * Concurrency: a Watchdog belongs to exactly one run.  Under a parallel
 * experiment grid every worker arms its own instance for the cell it is
 * executing (one watchdog per in-flight simulation, never shared), and
 * the cell label identifies which (workload, design) cell tripped when
 * completion order is nondeterministic.
 */

#ifndef DCFB_RT_WATCHDOG_H
#define DCFB_RT_WATCHDOG_H

#include <cstdint>
#include <optional>
#include <string>

#include "common/types.h"
#include "rt/error.h"

namespace dcfb::rt {

/**
 * Tracks no-retire / no-fetch windows between observations.
 */
class Watchdog
{
  public:
    /** @param window_ cycles of zero progress that trip the watchdog */
    explicit Watchdog(Cycle window_) : window(window_) {}

    /**
     * Feed the current progress counters.  Returns a Watchdog error when
     * retire or fetch has made no progress for more than the window;
     * std::nullopt while the machine is healthy.
     */
    std::optional<Error>
    observe(Cycle now, std::uint64_t retired, std::uint64_t fetched);

    /** Reset the baseline (warmup/measure boundary, after a recovery). */
    void rearm(Cycle now, std::uint64_t retired, std::uint64_t fetched);

    /** Label the run this watchdog guards ("workload/design"); attached
     *  to trip errors so parallel sweeps can attribute the failure. */
    void setCell(std::string label) { cell = std::move(label); }
    const std::string &cellLabel() const { return cell; }

    Cycle windowCycles() const { return window; }

  private:
    Cycle window;
    std::string cell;
    bool armed = false;
    std::uint64_t lastRetired = 0;
    std::uint64_t lastFetched = 0;
    Cycle retireProgressCycle = 0;
    Cycle fetchProgressCycle = 0;
};

} // namespace dcfb::rt

#endif // DCFB_RT_WATCHDOG_H
