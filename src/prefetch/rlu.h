/**
 * @file
 * Recently-Looked-Up (RLU) filter (Section V.B).
 *
 * An 8-entry structure holding the addresses of the blocks most recently
 * looked up in the L1i, either by the prefetcher or by the processor's
 * demand stream.  Prefetch candidates that hit in the RLU are dropped
 * without a cache lookup, which is what keeps the proactive SN4L+Dis
 * engine's lookup count at Shotgun's level (Fig. 14).
 */

#ifndef DCFB_PREFETCH_RLU_H
#define DCFB_PREFETCH_RLU_H

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "exec/arena.h"

namespace dcfb::prefetch {

/**
 * Small fully-associative FIFO of recently looked-up block addresses.
 */
class Rlu
{
  public:
    /** @param entries_ filter size; 0 disables filtering entirely. */
    explicit Rlu(std::size_t entries_ = 8, exec::Arena *arena = nullptr)
        : ring(entries_, kInvalidAddr, exec::ArenaAlloc<Addr>(arena)),
          cChecks(statSet.lazy("rlu_checks")),
          cHits(statSet.lazy("rlu_hits"))
    {}

    /** Record a lookup of @p block_addr. */
    void
    touch(Addr block_addr)
    {
        if (ring.empty())
            return;
        Addr key = blockAlign(block_addr);
        if (containsNoStat(key))
            return;
        ring[head] = key;
        head = (head + 1) % ring.size();
    }

    /** Membership test (counts filter statistics). */
    bool
    contains(Addr block_addr)
    {
        cChecks.add();
        if (containsNoStat(blockAlign(block_addr))) {
            cHits.add();
            return true;
        }
        return false;
    }

    std::size_t size() const { return ring.size(); }

    /** Storage: entries x block-address tag (~52 bits each). */
    std::uint64_t storageBits() const { return ring.size() * 52; }

    const StatSet &stats() const { return statSet; }

  private:
    bool
    containsNoStat(Addr key) const
    {
        for (Addr a : ring) {
            if (a == key)
                return true;
        }
        return false;
    }

    exec::ArenaVector<Addr> ring;
    std::size_t head = 0;
    StatSet statSet;
    // Lazily-bound handles preserving the key-presence semantics of the
    // previous per-check string adds (see obs::LazyCounter).
    obs::LazyCounter cChecks;
    obs::LazyCounter cHits;
};

} // namespace dcfb::prefetch

#endif // DCFB_PREFETCH_RLU_H
