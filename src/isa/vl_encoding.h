/**
 * @file
 * Synthetic variable-length ISA encoding (Section V.D of the paper).
 *
 * On a variable-length ISA, instruction boundaries inside a cache block
 * are unknown, so the paper's pre-decoder must be told *where* branches
 * start (via DisTable byte offsets and per-block branch footprints).  This
 * encoding makes that mechanic real:
 *
 *   byte 0:  bits [3:0] total instruction length in bytes (2..15)
 *            bits [7:4] instruction kind (InstrKind)
 *   bytes 1..4 (direct branches only): signed 32-bit little-endian target
 *            offset in *bytes*, relative to the instruction's start PC.
 *   remaining bytes: operand filler.
 *
 * Direct branches are therefore at least 5 bytes long; the workload
 * generator guarantees that.
 */

#ifndef DCFB_ISA_VL_ENCODING_H
#define DCFB_ISA_VL_ENCODING_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "isa/encoding.h"

namespace dcfb::isa {

/** Minimum/maximum encodable variable-length instruction sizes. */
constexpr unsigned kVlMinLength = 2;
constexpr unsigned kVlMaxLength = 15;
/** Direct branches need 1 header + 4 target bytes. */
constexpr unsigned kVlMinBranchLength = 5;

/** A decoded variable-length instruction. */
struct VlDecodedInstr
{
    InstrKind kind = InstrKind::Alu;
    unsigned length = kVlMinLength;
    bool hasTarget = false;
    Addr target = kInvalidAddr;
};

/**
 * Encode @p instr at @p pc into @p out (appends @c instr.length bytes).
 *
 * @pre instr.length is within [kVlMinLength, kVlMaxLength] and at least
 *      kVlMinBranchLength for direct branches.
 */
void vlEncodeInstr(Addr pc, const VlDecodedInstr &instr,
                   std::vector<std::uint8_t> &out);

/**
 * Decode the instruction starting at @p bytes (which points at its first
 * byte) located at @p pc.  @p avail is the number of readable bytes; the
 * caller must have stitched adjacent blocks together when an instruction
 * straddles a block boundary.  Returns length 0 when @p avail is too
 * small to decode.
 */
VlDecodedInstr vlDecodeInstr(Addr pc, const std::uint8_t *bytes,
                             unsigned avail);

} // namespace dcfb::isa

#endif // DCFB_ISA_VL_ENCODING_H
