# Empty compiler generated dependencies file for fig08_branches_per_bf.
# This may be replaced when dependencies are built.
