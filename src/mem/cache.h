/**
 * @file
 * Generic set-associative cache with true-LRU replacement.
 *
 * Used for the L1i, L1d and LLC data arrays as well as associative
 * metadata structures (the BTB prefetch buffer).  The cache stores only
 * presence and per-line metadata; actual instruction bytes always come
 * from the ProgramImage (the cache models *where* bytes are, not the
 * bytes themselves).
 */

#ifndef DCFB_MEM_CACHE_H
#define DCFB_MEM_CACHE_H

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "exec/arena.h"

namespace dcfb::mem {

/**
 * Set-associative cache indexed by block address.
 *
 * @tparam Meta per-line metadata (prefetch flags, isInstruction bit, ...)
 */
template <typename Meta>
class SetAssocCache
{
  public:
    struct Line
    {
        Addr blockAddr = kInvalidAddr; //!< block-aligned address
        bool valid = false;
        std::uint64_t lastUse = 0;
        Meta meta{};
    };

    /** Result of an insertion: the line that was displaced, if any. */
    struct Evicted
    {
        bool valid = false;
        Addr blockAddr = kInvalidAddr;
        Meta meta{};
    };

    /**
     * @param num_sets number of sets (power of two)
     * @param assoc_   ways per set
     * @param arena    optional cell arena backing the line array
     */
    SetAssocCache(unsigned num_sets, unsigned assoc_,
                  exec::Arena *arena = nullptr)
        : numSets(num_sets), assoc(assoc_),
          lines(std::size_t{num_sets} * assoc_,
                exec::ArenaAlloc<Line>(arena))
    {
        assert(isPowerOfTwo(num_sets));
        assert(assoc_ > 0);
    }

    /** Build from capacity in bytes (64-byte blocks). */
    static SetAssocCache
    fromBytes(std::size_t bytes, unsigned assoc_,
              exec::Arena *arena = nullptr)
    {
        return SetAssocCache(
            static_cast<unsigned>(bytes / kBlockBytes / assoc_), assoc_,
            arena);
    }

    /** Bytes of line-array storage a (sets, ways) geometry needs --
     *  arena sizing for cells that place the array in a slab. */
    static std::size_t
    storageBytes(unsigned num_sets, unsigned assoc_)
    {
        return std::size_t{num_sets} * assoc_ * sizeof(Line);
    }

    unsigned setIndex(Addr addr) const
    {
        return static_cast<unsigned>(blockNumber(addr) & (numSets - 1));
    }

    /** Find the line holding @p addr; optionally refresh its LRU age. */
    Line *
    lookup(Addr addr, bool touch = true)
    {
        Addr want = blockAlign(addr);
        for (Line &line : set(setIndex(addr))) {
            if (line.valid && line.blockAddr == want) {
                if (touch)
                    line.lastUse = ++tick;
                return &line;
            }
        }
        return nullptr;
    }

    const Line *
    lookup(Addr addr) const
    {
        Addr want = blockAlign(addr);
        for (const Line &line : set(setIndex(addr))) {
            if (line.valid && line.blockAddr == want)
                return &line;
        }
        return nullptr;
    }

    bool contains(Addr addr) const { return lookup(addr) != nullptr; }

    /**
     * Insert @p addr with @p meta, evicting the LRU way if the set is
     * full.  @p way_limit, when non-zero, restricts the insertion to the
     * first @p way_limit ways of the set (DV-LLC shrinks a set by one way
     * when its LRU way is a BF-holder).
     */
    Evicted
    insert(Addr addr, const Meta &meta, unsigned way_limit = 0)
    {
        unsigned si = setIndex(addr);
        unsigned ways = way_limit == 0 ? assoc : way_limit;
        assert(ways <= assoc);
        auto s = set(si);
        Line *victim = nullptr;
        for (unsigned w = 0; w < ways; ++w) {
            Line &line = s[w];
            if (!line.valid) {
                victim = &line;
                break;
            }
            if (!victim || line.lastUse < victim->lastUse)
                victim = &line;
        }
        Evicted ev;
        if (victim->valid) {
            ev.valid = true;
            ev.blockAddr = victim->blockAddr;
            ev.meta = victim->meta;
        }
        victim->valid = true;
        victim->blockAddr = blockAlign(addr);
        victim->lastUse = ++tick;
        victim->meta = meta;
        return ev;
    }

    /** Invalidate the line holding @p addr (no-op when absent). */
    void
    invalidate(Addr addr)
    {
        if (Line *line = lookup(addr, false))
            line->valid = false;
    }

    /** Mutable view of one set (DV-LLC and tests iterate sets). */
    std::span<Line>
    set(unsigned set_index)
    {
        assert(set_index < numSets);
        return {lines.data() + std::size_t{set_index} * assoc, assoc};
    }

    std::span<const Line>
    set(unsigned set_index) const
    {
        assert(set_index < numSets);
        return {lines.data() + std::size_t{set_index} * assoc, assoc};
    }

    /** LRU-ordered victim of a set among the first @p ways ways. */
    Line *
    lruWay(unsigned set_index, unsigned ways = 0)
    {
        auto s = set(set_index);
        unsigned limit = ways == 0 ? assoc : ways;
        Line *victim = &s[0];
        for (unsigned w = 1; w < limit; ++w) {
            if (!s[w].valid)
                return &s[w];
            if (s[w].lastUse < victim->lastUse)
                victim = &s[w];
        }
        return victim;
    }

    unsigned sets() const { return numSets; }
    unsigned ways() const { return assoc; }
    std::size_t capacityBytes() const
    {
        return std::size_t{numSets} * assoc * kBlockBytes;
    }

    /** Count of valid lines (tests/occupancy reports). */
    std::size_t
    occupancy() const
    {
        std::size_t n = 0;
        for (const Line &line : lines)
            n += line.valid;
        return n;
    }

  private:
    unsigned numSets;
    unsigned assoc;
    exec::ArenaVector<Line> lines;
    std::uint64_t tick = 0;
};

} // namespace dcfb::mem

#endif // DCFB_MEM_CACHE_H
