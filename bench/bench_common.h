/**
 * @file
 * Shared helpers for the per-figure bench harnesses.
 *
 * Each bench binary regenerates one table or figure of the paper: same
 * rows/series, measured on the synthetic server workloads.  Absolute
 * numbers differ from the paper's testbed; EXPERIMENTS.md records the
 * paper-vs-measured comparison.
 *
 * Every bench routes its output through a bench::Harness, which adds two
 * flags on top of the text tables (see EXPERIMENTS.md for the schemas):
 *
 *   --json <file>   also write every reported table (same cells as the
 *                   text output) plus recorded scalars as one JSON
 *                   document -- the BENCH_*.json regression format
 *   --trace <file>  stream miss-attribution events from every simulated
 *                   run into <file> (*.jsonl -> JSONL, else Chrome
 *                   trace-event format); runs buffer per thread and
 *                   merge at close, so the sweep still parallelizes
 *   --trace-spans <file>  write a span timeline (Chrome trace-event
 *                   JSON) of the whole process: one exec.cell span per
 *                   simulated cell on its worker's track, with
 *                   sim.setup/warm/measure children (DESIGN.md
 *                   "Telemetry plane")
 *   --inject <spec> seeded fault injection applied to every run, e.g.
 *                   drop:rate=0.5,seed=3 (see README "Robustness")
 *   --jobs <n>      worker threads for experiment sweeps (default: auto,
 *                   one per hardware thread; --jobs 1 reproduces the
 *                   historical serial runner bit for bit)
 *   --cache <dir>   persistent content-addressed result cache: every
 *                   simulated cell is keyed by its config fingerprint
 *                   and served from <dir> when already computed there.
 *                   Off by default; with the flag absent the run is
 *                   bit-identical to the direct simulator path.
 *   --profile       time every simulated cell (setup/warm/measure wall
 *                   split plus per-phase cycle-loop attribution) and
 *                   emit the records as the JSON document's "prof"
 *                   section.  Simulated results are unchanged; see
 *                   DESIGN.md section 10 for the overhead model.
 *   --generic-step  force the generic (virtual-dispatch) System::step
 *                   path instead of the preset-specialized one; the
 *                   two are bit-identical (DESIGN.md section 14), this
 *                   is a debugging escape hatch.
 *
 * The authoritative flag reference is docs/FLAGS.md, generated from
 * src/cli/flag_docs.cpp (which also feeds --help below).
 *
 * Every `--json` document's "meta" section also records the process's
 * peak RSS and CPU time (peak_rss_bytes, cpu_user_s, cpu_sys_s, from
 * getrusage) so regression archives carry resource provenance.
 */

#ifndef DCFB_BENCH_COMMON_H
#define DCFB_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include <sys/resource.h>

#include "cli/flag_docs.h"
#include "exec/schedule.h"
#include "obs/json.h"
#include "obs/profiler.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "rt/faults.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "svc/result_cache.h"
#include "workload/profiles.h"

namespace dcfb::bench {

/** Bench-wide run windows (shorter than the tests' defaults; combined
 *  with the `--jobs` grid scheduler this keeps a full sweep over every
 *  bench binary cheap even on small machines). */
inline sim::RunWindows
windows()
{
    return sim::RunWindows{150000, 150000};
}

/**
 * Scatter/gather over independent simulations: run every config on the
 * `--jobs` worker pool and return the results in input order.
 *
 * Configs with no pre-resolved image get one from the process-wide
 * workload::ImageCache, so repeats of a workload share one immutable
 * program.  Results are deterministic and identical for every job
 * count; the sweep's wall time, per-cell times and pool occupancy are
 * pushed to exec::ExecLog and land in the JSON report's "exec" section.
 * Tracing no longer constrains the job count: the tracer buffers each
 * run on its thread and merges at close.
 */
inline std::vector<sim::RunResult>
simulateAll(const std::string &label, std::vector<sim::SystemConfig> configs,
            const sim::RunWindows &windows)
{
    unsigned jobs = exec::resolveJobs();
    for (auto &cfg : configs) {
        if (!cfg.program)
            cfg.program = workload::ImageCache::global().get(cfg.profile);
    }
    std::vector<std::optional<sim::RunResult>> out(configs.size());
    auto report = exec::runIndexed(
        label, configs.size(), jobs,
        [&](std::size_t i) {
            out[i] = svc::simulateCached(configs[i], windows);
        },
        [&](std::size_t i) {
            return configs[i].profile.name + "/" +
                sim::presetName(configs[i].preset);
        });
    exec::ExecLog::push(std::move(report));
    std::vector<sim::RunResult> results;
    results.reserve(out.size());
    for (auto &r : out)
        results.push_back(std::move(*r));
    return results;
}

/** The three workloads used for parameter sweeps (largest, middle,
 *  smallest footprint) when a full 7-workload grid would be excessive. */
inline std::vector<std::string>
sweepWorkloads()
{
    return {"OLTP (DB A)", "Web (Apache)", "Web Frontend"};
}

/** All seven workloads, paper order. */
inline std::vector<std::string>
allWorkloads()
{
    return workload::serverWorkloadNames();
}

/** Print the standard bench banner. */
inline void
banner(const char *figure, const char *claim)
{
    std::printf("%s\n  paper: %s\n", figure, claim);
}

/**
 * Per-bench output harness: prints the banner, parses the shared
 * flags, mirrors reported tables/scalars into the JSON document, and
 * flushes everything on destruction.
 */
class Harness
{
  public:
    Harness(int argc, char **argv, const char *figure_, const char *claim_)
        : figure(figure_), claim(claim_)
    {
        parseArgs(argc, argv);
        banner(figure_, claim_);
        if (!tracePath.empty() && obs::Tracing::open(tracePath))
            traceOpened = true;
        if (!spanPath.empty() && obs::Spans::open(spanPath))
            spansOpened = true;
    }

    ~Harness()
    {
        if (traceOpened)
            obs::Tracing::close();
        if (spansOpened) {
            obs::Spans::close();
            std::printf("[span timeline written to %s]\n",
                        spanPath.c_str());
        }
        if (!jsonPath.empty())
            writeJson();
    }

    Harness(const Harness &) = delete;
    Harness &operator=(const Harness &) = delete;

    /** Print @p table and mirror it into the JSON document. */
    void
    report(const sim::Table &table, const std::string &title)
    {
        table.print(title);
        tables.push(table.toJson(title));
    }

    /** Record a derived scalar in the JSON document (callers print
     *  their own text form; this only feeds the machine output). */
    void
    note(const std::string &key, double value)
    {
        notes[key] = value;
    }

    /** Attach a full RunResult (counters + histograms) to the JSON
     *  document, keyed under "runs". */
    void
    attachRun(const sim::RunResult &result)
    {
        runs.push(sim::toJson(result));
    }

  private:
    void
    parseArgs(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            auto value = [&](const char *flag) -> std::string {
                std::string prefix = std::string(flag) + "=";
                if (arg.rfind(prefix, 0) == 0 &&
                    arg.size() > prefix.size())
                    return arg.substr(prefix.size());
                if (arg == flag && i + 1 < argc)
                    return argv[++i];
                std::fprintf(stderr, "%s requires a value\n", flag);
                std::exit(2);
            };
            if (arg == "--help" || arg == "-h") {
                // Usage text and docs/FLAGS.md render from one table.
                std::printf("usage: %s %s\n", argv[0],
                            cli::usageLine(cli::benchHarnessDocs())
                                .c_str());
                std::exit(0);
            } else if (arg == "--profile") {
                obs::Profiler::setEnabled(true);
                profileEnabled = true;
                std::printf("  [profiling enabled]\n");
            } else if (arg == "--generic-step") {
                sim::setDefaultGenericStep(true);
                std::printf("  [generic step path]\n");
            } else if (arg.rfind("--jobs", 0) == 0) {
                std::string spec = value("--jobs");
                if (spec == "auto") {
                    exec::setDefaultJobs(0);
                } else {
                    char *end = nullptr;
                    unsigned long n = std::strtoul(spec.c_str(), &end, 10);
                    if (end == nullptr || *end != '\0' || n == 0) {
                        std::fprintf(stderr,
                                     "--jobs expects a positive integer "
                                     "or 'auto', got '%s'\n",
                                     spec.c_str());
                        std::exit(2);
                    }
                    exec::setDefaultJobs(static_cast<unsigned>(n));
                }
            } else if (arg.rfind("--cache", 0) == 0) {
                std::string dir = value("--cache");
                if (auto opened = svc::ResultCache::openGlobal(dir);
                    !opened.ok()) {
                    std::fprintf(stderr, "%s\n",
                                 opened.error().render().c_str());
                    std::exit(2);
                }
                std::printf("  [result cache: %s]\n", dir.c_str());
            } else if (arg.rfind("--json", 0) == 0) {
                jsonPath = value("--json");
            } else if (arg.rfind("--trace-spans", 0) == 0) {
                // Checked before --trace: that branch matches by prefix.
                spanPath = value("--trace-spans");
            } else if (arg.rfind("--trace", 0) == 0) {
                tracePath = value("--trace");
            } else if (arg.rfind("--inject", 0) == 0) {
                auto plan = rt::parseFaultPlan(value("--inject"));
                if (!plan.ok()) {
                    std::fprintf(stderr, "%s\n",
                                 plan.error().render().c_str());
                    std::exit(2);
                }
                sim::setDefaultFaultPlan(plan.value());
                injectSpec = rt::faultPlanSpec(plan.value());
                std::printf("  [fault injection: %s]\n",
                            injectSpec.c_str());
            } else {
                std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
                std::exit(2);
            }
        }
    }

    void
    writeJson()
    {
        obs::JsonValue doc = obs::JsonValue::object();
        doc["schema"] = "dcfb-bench-v1";
        doc["figure"] = figure;
        doc["claim"] = claim;
        // Provenance: enough to attribute any cached or served result
        // back to the build and run windows that produced it.
        obs::JsonValue meta = obs::JsonValue::object();
        meta["git"] = DCFB_GIT_DESCRIBE;
        meta["build_type"] = DCFB_BUILD_TYPE;
        meta["build_flags"] = DCFB_BUILD_FLAGS;
        obs::JsonValue win = obs::JsonValue::object();
        win["warm"] = windows().warm;
        win["measure"] = windows().measure;
        meta["windows"] = std::move(win);
        // Resource provenance (dcfb-bench-v1 additions; ru_maxrss is
        // kilobytes on Linux).
        rusage ru{};
        if (getrusage(RUSAGE_SELF, &ru) == 0) {
            meta["peak_rss_bytes"] =
                static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
            meta["cpu_user_s"] = static_cast<double>(ru.ru_utime.tv_sec) +
                static_cast<double>(ru.ru_utime.tv_usec) * 1e-6;
            meta["cpu_sys_s"] = static_cast<double>(ru.ru_stime.tv_sec) +
                static_cast<double>(ru.ru_stime.tv_usec) * 1e-6;
        }
        if (svc::ResultCache *cache = svc::ResultCache::global()) {
            svc::ResultCacheStats cs = cache->stats();
            obs::JsonValue c = obs::JsonValue::object();
            c["schema"] = svc::kCacheSchema;
            c["dir"] = cache->dir();
            c["hits"] = cs.hits;
            c["misses"] = cs.misses;
            c["stores"] = cs.stores;
            c["rejects"] = cs.rejects;
            meta["cache"] = std::move(c);
        }
        doc["meta"] = std::move(meta);
        if (!injectSpec.empty())
            doc["inject"] = injectSpec;
        doc["tables"] = std::move(tables);
        if (!notes.members().empty())
            doc["notes"] = std::move(notes);
        if (!runs.items().empty())
            doc["runs"] = std::move(runs);
        // Scheduling telemetry: one entry per sweep the bench ran.
        // Serial sweeps are omitted so a `--jobs 1` document stays
        // bit-identical to the historical serial format.
        obs::JsonValue execs = obs::JsonValue::array();
        for (const auto &report : exec::ExecLog::drain()) {
            if (report.jobs <= 1)
                continue;
            obs::JsonValue e = obs::JsonValue::object();
            e["label"] = report.label;
            e["jobs"] = static_cast<std::uint64_t>(report.jobs);
            e["cells"] = report.cells;
            e["wall_s"] = report.wallSeconds;
            e["busy_s"] = report.busySeconds;
            e["occupancy"] = report.occupancy();
            obs::JsonValue cells = obs::JsonValue::array();
            for (const auto &cell : report.cellTimes) {
                obs::JsonValue c = obs::JsonValue::object();
                c["cell"] = cell.label;
                c["wall_s"] = cell.seconds;
                cells.push(std::move(c));
            }
            e["cell_wall_s"] = std::move(cells);
            execs.push(std::move(e));
        }
        if (!execs.items().empty())
            doc["exec"] = std::move(execs);
        // Per-cell timing records (--profile only, so default documents
        // stay bit-identical to the pre-profiler format).  profJson
        // sorts cells by (workload, design), making the section stable
        // under any --jobs count.
        if (profileEnabled)
            doc["prof"] = obs::profJson(obs::Profiler::drain());
        std::ofstream out(jsonPath, std::ios::out | std::ios::trunc);
        if (!out.is_open()) {
            std::fprintf(stderr, "cannot open %s\n", jsonPath.c_str());
            return;
        }
        out << doc.dump(2) << '\n';
        std::printf("\n[json report written to %s]\n", jsonPath.c_str());
    }

    std::string figure;
    std::string claim;
    std::string jsonPath;
    std::string tracePath;
    std::string spanPath;
    std::string injectSpec;
    bool traceOpened = false;
    bool spansOpened = false;
    bool profileEnabled = false;
    obs::JsonValue tables = obs::JsonValue::array();
    obs::JsonValue notes = obs::JsonValue::object();
    obs::JsonValue runs = obs::JsonValue::array();
};

} // namespace dcfb::bench

#endif // DCFB_BENCH_COMMON_H
