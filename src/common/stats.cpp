#include "common/stats.h"

#include <sstream>

namespace dcfb {

void
StatSet::reset()
{
    for (auto &kv : counters)
        kv.second = 0;
}

std::string
StatSet::dump() const
{
    std::ostringstream os;
    for (const auto &kv : counters)
        os << kv.first << " = " << kv.second << '\n';
    return os.str();
}

} // namespace dcfb
