#include "exec/schedule.h"

#include <chrono>
#include <mutex>
#include <optional>

#include "exec/pool.h"
#include "obs/span.h"

namespace dcfb::exec {

namespace {

unsigned gDefaultJobs = 0; // 0 = auto; written once at CLI parse

std::mutex gLogMutex;
std::vector<ExecReport> gLog;

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

} // namespace

void
setDefaultJobs(unsigned jobs)
{
    gDefaultJobs = jobs;
}

unsigned
defaultJobs()
{
    return gDefaultJobs;
}

unsigned
resolveJobs(unsigned requested)
{
    if (requested)
        return requested;
    if (gDefaultJobs)
        return gDefaultJobs;
    return hardwareJobs();
}

double
ExecReport::occupancy() const
{
    double denom = wallSeconds * static_cast<double>(jobs ? jobs : 1);
    return denom > 0.0 ? busySeconds / denom : 0.0;
}

ExecReport
runIndexed(std::string label, std::size_t n, unsigned jobs,
           const std::function<void(std::size_t)> &body,
           const std::function<std::string(std::size_t)> &cell_label)
{
    ExecReport report;
    report.label = std::move(label);
    report.jobs = jobs ? jobs : 1;
    report.cells = n;
    report.cellTimes.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (cell_label)
            report.cellTimes[i].label = cell_label(i);
    }

    // One span per cell (serial and pooled paths alike): the timeline
    // then shows every worker's occupancy, labelled with the cell.
    auto traced_body = [&](std::size_t i) {
        std::optional<obs::SpanScope> cell;
        if (obs::Spans::enabled())
            cell.emplace("exec.cell", report.cellTimes[i].label);
        body(i);
    };

    auto t0 = std::chrono::steady_clock::now();
    if (report.jobs <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            auto c0 = std::chrono::steady_clock::now();
            traced_body(i);
            report.cellTimes[i].seconds = secondsSince(c0);
            report.busySeconds += report.cellTimes[i].seconds;
        }
        report.wallSeconds = secondsSince(t0);
        return report;
    }

    {
        Pool pool(report.jobs);
        for (std::size_t i = 0; i < n; ++i) {
            pool.submit([&, i] {
                auto c0 = std::chrono::steady_clock::now();
                traced_body(i);
                // Each slot is written by exactly one task; the
                // pool barrier publishes them to the caller.
                report.cellTimes[i].seconds = secondsSince(c0);
            });
        }
        pool.wait(); // rethrows the first cell failure
        report.busySeconds = pool.busySeconds();
    }
    report.wallSeconds = secondsSince(t0);
    return report;
}

void
parallelFor(std::size_t n, unsigned jobs,
            const std::function<void(std::size_t)> &body)
{
    runIndexed("", n, jobs, body);
}

void
ExecLog::push(ExecReport report)
{
    std::unique_lock<std::mutex> lock(gLogMutex);
    gLog.push_back(std::move(report));
}

std::vector<ExecReport>
ExecLog::drain()
{
    std::unique_lock<std::mutex> lock(gLogMutex);
    std::vector<ExecReport> out;
    out.swap(gLog);
    return out;
}

} // namespace dcfb::exec
