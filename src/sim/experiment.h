/**
 * @file
 * Experiment grid runner: run (workload x design) matrices with shared
 * windows and cache results, plus the geometric/arithmetic means the
 * paper's "Average" bars use.
 */

#ifndef DCFB_SIM_EXPERIMENT_H
#define DCFB_SIM_EXPERIMENT_H

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "workload/profiles.h"

namespace dcfb::sim {

/** Keyed results of a (workload x design) sweep. */
class ExperimentGrid
{
  public:
    using ConfigHook = std::function<void(SystemConfig &)>;

    /**
     * @param presets   designs to evaluate
     * @param windows   warmup/measure windows
     * @param hook      optional per-config tweak (sweeps)
     * @param vl        build variable-length-ISA workloads
     */
    ExperimentGrid(std::vector<Preset> presets,
                   RunWindows windows = RunWindows{},
                   ConfigHook hook = nullptr, bool vl = false);

    /** Run the full 7-workload grid. */
    void run();

    /** Run a subset of workloads (faster benches). */
    void run(const std::vector<std::string> &workloads);

    /** Result for a (workload, design) cell; nullptr when not run. */
    const RunResult *tryAt(const std::string &workload,
                           Preset preset) const;

    /** tryAt() for legacy callers: raises an rt::Exception whose error
     *  lists the cells the grid actually holds. */
    const RunResult &at(const std::string &workload, Preset preset) const;

    const std::vector<std::string> &workloads() const { return names; }

    /** Arithmetic mean of a per-workload metric. */
    double
    mean(Preset preset,
         const std::function<double(const RunResult &)> &metric) const;

    /** Geometric mean of per-workload speedups over a baseline preset. */
    double gmeanSpeedup(Preset design, Preset baseline) const;

  private:
    std::vector<Preset> presets;
    RunWindows windows;
    ConfigHook hook;
    bool variableLength;
    std::vector<std::string> names;
    std::map<std::pair<std::string, Preset>, RunResult> results;
};

} // namespace dcfb::sim

#endif // DCFB_SIM_EXPERIMENT_H
