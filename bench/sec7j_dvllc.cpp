/**
 * @file
 * Section VII.J: variable-length ISA support via DV-LLC.  The paper
 * reports that virtualizing branch footprints in the LRU way leaves the
 * LLC instruction hit ratio unchanged, costs at most 0.1 % of the data
 * hit ratio, and preserves the prefetcher's speedup.
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace dcfb;
    bench::Harness h(argc, argv, "Sec. VII.J - DV-LLC on the variable-length ISA",
                  "instr hit ratio unchanged; data hit ratio -0.1% worst; "
                  "same speedup");

    sim::Table table({"workload", "instr hit (conv)", "instr hit (DV)",
                      "data hit (conv)", "data hit (DV)",
                      "speedup (conv)", "speedup (DV)"});
    for (const auto &name : bench::sweepWorkloads()) {
        auto profile = workload::serverProfile(name, /*vl=*/true);

        auto base_cfg = sim::makeConfig(profile, sim::Preset::Baseline);
        base_cfg.llc.dvllc = false;
        base_cfg.l1i.fetchFootprints = false;
        auto base = sim::simulate(base_cfg, bench::windows());

        auto conv_cfg = sim::makeConfig(profile, sim::Preset::SN4LDisBtb);
        conv_cfg.llc.dvllc = false;
        conv_cfg.l1i.fetchFootprints = false;
        auto conv = sim::simulate(conv_cfg, bench::windows());

        auto dv_cfg = sim::makeConfig(profile, sim::Preset::SN4LDisBtb);
        auto dv = sim::simulate(dv_cfg, bench::windows());

        table.addRow(
            {name,
             sim::Table::pct(conv.ratio("llc.llc_instr_hits",
                                        "llc.llc_instr_accesses")),
             sim::Table::pct(dv.ratio("llc.llc_instr_hits",
                                      "llc.llc_instr_accesses")),
             sim::Table::pct(conv.ratio("llc.llc_data_hits",
                                        "llc.llc_data_accesses")),
             sim::Table::pct(dv.ratio("llc.llc_data_hits",
                                      "llc.llc_data_accesses")),
             sim::Table::num(sim::speedup(conv, base), 3),
             sim::Table::num(sim::speedup(dv, base), 3)});
    }
    h.report(table, "DV-LLC vs. conventional LLC (VL-ISA workloads)");
    return 0;
}
