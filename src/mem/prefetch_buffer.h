/**
 * @file
 * Fully-associative L1i prefetch buffer.
 *
 * Used by the NXL side-effect study (Fig. 5 methodology: "a 64-entry
 * prefetch buffer along with the L1i to immune it from cache pollution")
 * and by Shotgun (64-entry L1i prefetch buffer).  SN4L and Dis prefetch
 * directly into the cache and do not use one — that is one of the
 * paper's Table II distinctions.
 */

#ifndef DCFB_MEM_PREFETCH_BUFFER_H
#define DCFB_MEM_PREFETCH_BUFFER_H

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/types.h"

namespace dcfb::mem {

/**
 * Fully-associative LRU buffer of prefetched blocks.
 */
class PrefetchBuffer
{
  public:
    explicit PrefetchBuffer(std::size_t entries_) : cap(entries_) {}

    /** Insert a prefetched block (evicting LRU when full). */
    void insert(Addr block_addr);

    /** True when the block is buffered (does not refresh LRU). */
    bool contains(Addr block_addr) const;

    /**
     * Demand lookup: when present, the block is removed (it moves into
     * the cache proper) and true is returned.
     */
    bool extract(Addr block_addr);

    std::size_t size() const { return map.size(); }
    std::size_t capacity() const { return cap; }

  private:
    std::size_t cap;
    std::list<Addr> order; //!< LRU order, most recent at front
    std::unordered_map<Addr, std::list<Addr>::iterator> map;
};

} // namespace dcfb::mem

#endif // DCFB_MEM_PREFETCH_BUFFER_H
