/**
 * @file
 * Figure 18: speedup of SN4L+Dis+BTB over Shotgun as the BTB budget
 * shrinks (emulating the larger instruction footprints of commercial
 * server workloads).  Paper: the gap grows as the BTB size decreases.
 */

#include <cmath>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace dcfb;
    bench::Harness h(argc, argv, "Fig. 18 - ours vs. Shotgun with shrinking BTBs",
                  "the gap over Shotgun grows as BTB size decreases");

    // Flatten the (scale x workload x {ours, Shotgun}) sweep into one
    // scatter/gather pass; rows reduce from the gathered results.
    const std::vector<unsigned> divs{1, 2, 4, 8};
    std::vector<sim::SystemConfig> cfgs;
    for (unsigned div : divs) {
        for (const auto &name : bench::allWorkloads()) {
            auto profile = workload::serverProfile(name);
            auto ours_cfg =
                sim::makeConfig(profile, sim::Preset::SN4LDisBtb);
            ours_cfg.btbEntries = 2048 / div;
            cfgs.push_back(std::move(ours_cfg));
            auto sg_cfg = sim::makeConfig(profile, sim::Preset::Shotgun);
            sg_cfg.shotgunBtb.ubtbEntries = 1536 / div;
            sg_cfg.shotgunBtb.cbtbEntries = std::max(128u / div, 16u);
            sg_cfg.shotgunBtb.ribEntries = std::max(512u / div, 32u);
            cfgs.push_back(std::move(sg_cfg));
        }
    }
    auto res = bench::simulateAll("fig18 BTB sweep", std::move(cfgs),
                                  bench::windows());

    sim::Table table({"BTB scale", "ours BTB", "Shotgun U-BTB",
                      "ours/Shotgun speedup"});
    std::size_t idx = 0;
    for (unsigned div : divs) {
        double log_sum = 0.0;
        for (std::size_t w = 0; w < bench::allWorkloads().size(); ++w) {
            const auto &ours = res[idx++];
            const auto &sg = res[idx++];
            log_sum += std::log(ours.ipc() / sg.ipc());
        }
        double gmean = std::exp(log_sum / 7.0);
        table.addRow({"1/" + std::to_string(div),
                      std::to_string(2048 / div),
                      std::to_string(1536 / div),
                      sim::Table::num(gmean, 3)});
    }
    h.report(table, "Speedup of SN4L+Dis+BTB over Shotgun, varying BTB size");
    return 0;
}
