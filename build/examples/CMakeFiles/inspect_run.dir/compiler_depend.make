# Empty compiler generated dependencies file for inspect_run.
# This may be replaced when dependencies are built.
