/**
 * @file
 * Figure 8: fraction of branches left uncovered as a function of the
 * number of branch slots in a branch footprint (BF).  Paper: four
 * byte-offsets per block cover almost all branches.
 */

#include <map>

#include "bench_common.h"
#include "workload/cfg.h"
#include "workload/trace.h"

int
main(int argc, char **argv)
{
    using namespace dcfb;
    bench::Harness h(argc, argv, "Fig. 8 - uncovered branches vs. branches per BF",
                  "4 branch slots per 64B block cover ~all branches");

    sim::Table table({"workload", "1", "2", "3", "4", "5"});
    for (const auto &name : bench::allWorkloads()) {
        // Weight blocks by execution: walk the trace and count branches
        // per executed cache block.
        auto program =
            workload::buildProgram(workload::serverProfile(name, true));
        std::map<Addr, std::map<Addr, bool>> branches; // block -> brs
        for (const auto &fn : program.functions) {
            for (const auto &bb : fn.blocks) {
                for (std::size_t j = 0; j < bb.numInstrs(); ++j) {
                    if (isa::isBranch(bb.kinds[j]))
                        branches[blockAlign(bb.pcs[j])][bb.pcs[j]] = true;
                }
            }
        }
        workload::TraceWalker walker(program, 7);
        std::map<std::size_t, std::uint64_t> hist; // #branches -> count
        std::uint64_t total_branches = 0;
        Addr last_block = kInvalidAddr;
        for (int i = 0; i < 1000000; ++i) {
            auto e = walker.next();
            Addr block = blockAlign(e.pc);
            if (block == last_block)
                continue;
            last_block = block;
            std::size_t n = branches.count(block)
                ? branches[block].size()
                : 0;
            hist[n] += 1;
            total_branches += n;
        }
        std::vector<std::string> row{name};
        for (std::size_t slots = 1; slots <= 5; ++slots) {
            std::uint64_t uncovered = 0;
            for (const auto &[n, cnt] : hist) {
                if (n > slots)
                    uncovered += (n - slots) * cnt;
            }
            double frac = total_branches
                ? static_cast<double>(uncovered) /
                    static_cast<double>(total_branches)
                : 0.0;
            row.push_back(sim::Table::pct(frac));
        }
        table.addRow(row);
    }
    h.report(table, "Uncovered branches vs. branch slots per footprint");
    return 0;
}
