# Empty compiler generated dependencies file for prefetcher_comparison.
# This may be replaced when dependencies are built.
