#include "sim/report.h"

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace dcfb::sim {

Table::Table(std::vector<std::string> header)
{
    rows.push_back(std::move(header));
}

void
Table::addRow(std::vector<std::string> row)
{
    rows.push_back(std::move(row));
}

std::string
Table::pct(double fraction, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << fraction * 100.0
       << "%";
    return os.str();
}

std::string
Table::num(double value, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << value;
    return os.str();
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths;
    for (const auto &row : rows) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    std::ostringstream os;
    for (std::size_t r = 0; r < rows.size(); ++r) {
        for (std::size_t c = 0; c < rows[r].size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << rows[r][c];
        }
        os << '\n';
        if (r == 0) {
            for (std::size_t c = 0; c < widths.size(); ++c)
                os << std::string(widths[c], '-') << "  ";
            os << '\n';
        }
    }
    return os.str();
}

void
Table::print(const std::string &title) const
{
    std::cout << "\n== " << title << " ==\n" << render() << std::flush;
}

obs::JsonValue
Table::toJson(const std::string &title) const
{
    obs::JsonValue out = obs::JsonValue::object();
    out["title"] = title;
    obs::JsonValue columns = obs::JsonValue::array();
    const auto &header = rows.front();
    for (const auto &col : header)
        columns.push(col);
    out["columns"] = std::move(columns);
    obs::JsonValue body = obs::JsonValue::array();
    for (std::size_t r = 1; r < rows.size(); ++r) {
        obs::JsonValue row = obs::JsonValue::object();
        for (std::size_t c = 0; c < rows[r].size(); ++c)
            row[header[c]] = rows[r][c];
        body.push(std::move(row));
    }
    out["rows"] = std::move(body);
    return out;
}

obs::JsonValue
toJson(const RunResult &result)
{
    obs::JsonValue out = obs::JsonValue::object();
    out["workload"] = result.workload;
    out["design"] = result.design;
    out["cycles"] = result.cycles;
    out["instructions"] = result.instructions;
    obs::JsonValue stats = obs::JsonValue::object();
    for (const auto &kv : result.stats)
        stats[kv.first] = kv.second;
    out["stats"] = std::move(stats);
    obs::JsonValue hists = obs::JsonValue::object();
    for (const auto &kv : result.hists) {
        obs::JsonValue h = obs::JsonValue::object();
        h["count"] = kv.second.count;
        h["sum"] = kv.second.sum;
        h["max"] = kv.second.max;
        obs::JsonValue buckets = obs::JsonValue::array();
        for (const auto &b : kv.second.buckets) {
            obs::JsonValue pair = obs::JsonValue::array();
            pair.push(std::uint64_t{b.first});
            pair.push(b.second);
            buckets.push(std::move(pair));
        }
        h["buckets"] = std::move(buckets);
        hists[kv.first] = std::move(h);
    }
    out["hists"] = std::move(hists);
    return out;
}

std::optional<RunResult>
runResultFromJson(const obs::JsonValue &v)
{
    using obs::JsonValue;
    if (v.kind() != JsonValue::Kind::Object)
        return std::nullopt;
    const JsonValue *workload = v.find("workload");
    const JsonValue *design = v.find("design");
    const JsonValue *cycles = v.find("cycles");
    const JsonValue *instructions = v.find("instructions");
    const JsonValue *stats = v.find("stats");
    if (!workload || !design || !cycles || !instructions || !stats)
        return std::nullopt;

    RunResult res;
    res.workload = workload->asString();
    res.design = design->asString();
    res.cycles = cycles->asUint();
    res.instructions = instructions->asUint();
    for (const auto &kv : stats->members())
        res.stats[kv.first] = kv.second.asUint();
    if (const JsonValue *hists = v.find("hists")) {
        for (const auto &kv : hists->members()) {
            obs::HistogramSnapshot snap;
            const JsonValue &h = kv.second;
            if (const auto *c = h.find("count"))
                snap.count = c->asUint();
            if (const auto *s = h.find("sum"))
                snap.sum = s->asUint();
            if (const auto *m = h.find("max"))
                snap.max = m->asUint();
            if (const auto *buckets = h.find("buckets")) {
                for (const auto &pair : buckets->items()) {
                    if (pair.size() != 2)
                        return std::nullopt;
                    snap.buckets.emplace_back(
                        static_cast<unsigned>(pair.items()[0].asUint()),
                        pair.items()[1].asUint());
                }
            }
            res.hists.emplace(kv.first, std::move(snap));
        }
    }
    return res;
}

} // namespace dcfb::sim
