/**
 * @file
 * Figure 13: prefetch timeliness (CMAL) of N4L, SN4L, Dis and
 * SN4L+Dis+BTB.  Paper: 88 / 93 / 89 / 91 %.  Includes the proactive-
 * depth ablation called out in DESIGN.md.
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace dcfb;
    bench::Harness h(argc, argv, "Fig. 13 - timeliness (CMAL) of the proposed designs",
                  "N4L 88%, SN4L 93%, Dis 89%, SN4L+Dis+BTB 91%");

    const std::vector<sim::Preset> designs = {
        sim::Preset::N4LPlain, sim::Preset::SN4L, sim::Preset::DisOnly,
        sim::Preset::SN4LDisBtb};
    std::vector<sim::SystemConfig> cmal_cfgs;
    for (auto preset : designs) {
        for (const auto &name : bench::allWorkloads())
            cmal_cfgs.push_back(
                sim::makeConfig(workload::serverProfile(name), preset));
    }
    auto cmal_res = bench::simulateAll("fig13 CMAL grid",
                                       std::move(cmal_cfgs),
                                       bench::windows());

    sim::Table table({"design", "CMAL (avg)"});
    std::size_t idx = 0;
    for (auto preset : designs) {
        double sum = 0.0;
        for (std::size_t w = 0; w < bench::allWorkloads().size(); ++w)
            sum += cmal_res[idx++].cmal();
        table.addRow({sim::presetName(preset), sim::Table::pct(sum / 7.0)});
    }
    h.report(table, "Timeliness of different prefetchers");

    // The two ablations share one no-prefetcher baseline per workload.
    auto sweep_names = bench::sweepWorkloads();
    std::vector<sim::SystemConfig> base_cfgs;
    for (const auto &name : sweep_names) {
        base_cfgs.push_back(sim::makeConfig(workload::serverProfile(name),
                                            sim::Preset::Baseline));
    }
    auto bases = bench::simulateAll("fig13 ablation baselines",
                                    std::move(base_cfgs), bench::windows());

    // Ablation: proactive chain depth limit (paper picks 4).
    const std::vector<unsigned> limits{1, 2, 4, 8};
    std::vector<sim::SystemConfig> depth_cfgs;
    for (unsigned limit : limits) {
        for (const auto &name : sweep_names) {
            auto cfg = sim::makeConfig(workload::serverProfile(name),
                                       sim::Preset::SN4LDisBtb);
            cfg.sn4l.chainDepthLimit = limit;
            depth_cfgs.push_back(std::move(cfg));
        }
    }
    auto depth_res = bench::simulateAll("fig13 chain-depth ablation",
                                        std::move(depth_cfgs),
                                        bench::windows());

    sim::Table depth({"chain depth limit", "CMAL (avg)", "speedup (avg)"});
    idx = 0;
    for (unsigned limit : limits) {
        double cmal_sum = 0.0, speed_sum = 0.0;
        for (std::size_t w = 0; w < sweep_names.size(); ++w, ++idx) {
            cmal_sum += depth_res[idx].cmal();
            speed_sum += sim::speedup(depth_res[idx], bases[w]);
        }
        depth.addRow({std::to_string(limit),
                      sim::Table::pct(cmal_sum / 3.0),
                      sim::Table::num(speed_sum / 3.0, 3)});
    }
    h.report(depth, "Ablation: proactive chain depth limit");

    // Ablation: SN1L vs. SN4L for the sequential tails of discontinuity
    // regions (the paper chooses SN1L to protect accuracy at depth).
    std::vector<sim::SystemConfig> tail_cfgs;
    for (bool sn1l : {true, false}) {
        for (const auto &name : sweep_names) {
            auto cfg = sim::makeConfig(workload::serverProfile(name),
                                       sim::Preset::SN4LDisBtb);
            cfg.sn4l.sn1lTails = sn1l;
            tail_cfgs.push_back(std::move(cfg));
        }
    }
    auto tail_res = bench::simulateAll("fig13 tail-policy ablation",
                                       std::move(tail_cfgs),
                                       bench::windows());

    sim::Table tails({"tail policy", "pf accuracy (avg)", "speedup (avg)"});
    idx = 0;
    for (bool sn1l : {true, false}) {
        double acc_sum = 0.0, speed_sum = 0.0;
        for (std::size_t w = 0; w < sweep_names.size(); ++w, ++idx) {
            acc_sum += tail_res[idx].ratio("l1i.pf_useful", "l1i.pf_issued");
            speed_sum += sim::speedup(tail_res[idx], bases[w]);
        }
        tails.addRow({sn1l ? "SN1L tails (paper)" : "SN4L tails",
                      sim::Table::pct(acc_sum / 3.0),
                      sim::Table::num(speed_sum / 3.0, 3)});
    }
    h.report(tails, "Ablation: sequential-tail depth beyond discontinuities");
    return 0;
}
