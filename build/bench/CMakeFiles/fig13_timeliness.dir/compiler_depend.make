# Empty compiler generated dependencies file for fig13_timeliness.
# This may be replaced when dependencies are built.
