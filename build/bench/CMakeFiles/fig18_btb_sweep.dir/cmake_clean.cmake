file(REMOVE_RECURSE
  "CMakeFiles/fig18_btb_sweep.dir/fig18_btb_sweep.cpp.o"
  "CMakeFiles/fig18_btb_sweep.dir/fig18_btb_sweep.cpp.o.d"
  "fig18_btb_sweep"
  "fig18_btb_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_btb_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
