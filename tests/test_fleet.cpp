/**
 * @file
 * Distributed-fabric tests: NDJSON line framing under adversarial
 * splits, the consistent-hash ring's placement guarantees, the TCP
 * transport end to end, the client's connect retry, and the
 * coordinator itself — sharding, the federated warm path, worker
 * death/rebalance, and the dcfb-coord-v1 protocol — driven against
 * real in-process dcfb-serve instances.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "svc/client.h"
#include "svc/coordinator.h"
#include "svc/fingerprint.h"
#include "svc/hash_ring.h"
#include "svc/net.h"
#include "svc/result_cache.h"
#include "svc/server.h"

namespace dcfb {
namespace {

/** Fresh scratch directory under TMPDIR for one test. */
std::string
scratchDir(const std::string &tag)
{
    std::string templ =
        ::testing::TempDir() + "dcfb_fleet_" + tag + "_XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    const char *made = ::mkdtemp(buf.data());
    EXPECT_NE(made, nullptr);
    return made ? made : templ;
}

/** Shrink a config so one simulation is fast but non-trivial.  The
 *  coordinator and the workers must apply the same hook: federation
 *  relies on both sides fingerprinting identical configs. */
void
shrink(sim::SystemConfig &cfg)
{
    cfg.profile.numFunctions = 24;
    cfg.profile.dataFootprint = 1ull << 20;
    cfg.functionalWarmInstrs = 40000;
}

sim::RunWindows
tinyWindows()
{
    return sim::RunWindows{4000, 6000};
}

/** RAII guard: no process-global result cache leaks across tests. */
struct GlobalCacheGuard
{
    ~GlobalCacheGuard() { svc::ResultCache::closeGlobal(); }
};

// -- line framing ---------------------------------------------------------

TEST(FleetFraming, OneBytePerFeedReassembles)
{
    svc::LineFramer framer;
    const std::string wire = "{\"a\":1}\n{\"b\":2}\n";
    for (char c : wire) {
        ASSERT_TRUE(framer.feed(&c, 1).ok());
    }
    auto first = framer.next();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(*first, "{\"a\":1}");
    auto second = framer.next();
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(*second, "{\"b\":2}");
    EXPECT_FALSE(framer.next().has_value());
    EXPECT_EQ(framer.buffered(), 0u);
}

TEST(FleetFraming, ManyLinesInOneFeedPlusPartial)
{
    svc::LineFramer framer;
    const std::string wire = "one\ntwo\nthree\nfour-without-newline";
    ASSERT_TRUE(framer.feed(wire.data(), wire.size()).ok());
    EXPECT_EQ(framer.next().value(), "one");
    EXPECT_EQ(framer.next().value(), "two");
    EXPECT_EQ(framer.next().value(), "three");
    EXPECT_FALSE(framer.next().has_value());
    const std::string tail = "\n";
    ASSERT_TRUE(framer.feed(tail.data(), 1).ok());
    EXPECT_EQ(framer.next().value(), "four-without-newline");
}

TEST(FleetFraming, LinesPastSixtyFourKiBReassemble)
{
    // A merged fig16 grid report is far larger than one recv() buffer;
    // the framer must not care.
    svc::LineFramer framer;
    std::string big(200u << 10, 'x');
    big += "\n";
    for (std::size_t off = 0; off < big.size(); off += 1000) {
        std::size_t len = std::min<std::size_t>(1000, big.size() - off);
        ASSERT_TRUE(framer.feed(big.data() + off, len).ok());
    }
    auto line = framer.next();
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(line->size(), 200u << 10);
}

TEST(FleetFraming, UnterminatedOverflowIsATypedError)
{
    svc::LineFramer framer(64); // tiny cap for the test
    std::string garbage(65, 'g');
    auto fed = framer.feed(garbage.data(), garbage.size());
    ASSERT_FALSE(fed.ok());
    // The buffer is dropped so a poisoned connection cannot keep
    // growing it.
    EXPECT_EQ(framer.buffered(), 0u);
}

TEST(FleetFraming, TerminatedLinesMayExceedTheCapWindow)
{
    // The cap bounds *unterminated* buffering; several complete lines
    // whose sum exceeds the cap are fine within one feed.
    svc::LineFramer framer(32);
    std::string wire;
    for (int i = 0; i < 8; ++i)
        wire += std::string(16, static_cast<char>('a' + i)) + "\n";
    ASSERT_TRUE(framer.feed(wire.data(), wire.size()).ok());
    for (int i = 0; i < 8; ++i) {
        auto line = framer.next();
        ASSERT_TRUE(line.has_value());
        EXPECT_EQ(line->size(), 16u);
    }
}

TEST(FleetFraming, FuzzRandomSplitsNeverCorruptLines)
{
    // Deterministic fuzz: random-length lines, random-length feeds (1
    // byte up to 4 KiB), popped lines must match the corpus exactly.
    Rng rng(0xf1ee7);
    std::vector<std::string> corpus;
    std::string wire;
    for (int i = 0; i < 500; ++i) {
        std::size_t len = static_cast<std::size_t>(rng.below(300));
        std::string line;
        line.reserve(len);
        for (std::size_t j = 0; j < len; ++j) {
            // Printable, newline-free payload bytes.
            line.push_back(
                static_cast<char>(' ' + rng.below(94)));
        }
        corpus.push_back(line);
        wire += line;
        wire += "\n";
    }

    svc::LineFramer framer;
    std::vector<std::string> got;
    std::size_t off = 0;
    while (off < wire.size()) {
        std::size_t chunk = 1 + static_cast<std::size_t>(rng.below(4096));
        chunk = std::min(chunk, wire.size() - off);
        ASSERT_TRUE(framer.feed(wire.data() + off, chunk).ok());
        off += chunk;
        while (auto line = framer.next())
            got.push_back(std::move(*line));
    }
    ASSERT_EQ(got.size(), corpus.size());
    EXPECT_EQ(got, corpus);
    EXPECT_EQ(framer.buffered(), 0u);
}

TEST(FleetFraming, SplitScheduleIsInvisible)
{
    // Property: the sequence of popped lines is a pure function of the
    // byte stream — HOW the stream is cut into feed() calls (including
    // whether next() drains eagerly or lazily between feeds) must not
    // be observable.  One corpus, one reference framing, many random
    // split schedules.
    Rng corpusRng(0x5eedc0de);
    std::string wire;
    std::vector<std::string> expected;
    for (int i = 0; i < 200; ++i) {
        std::size_t len = static_cast<std::size_t>(corpusRng.below(120));
        std::string line;
        for (std::size_t j = 0; j < len; ++j)
            line.push_back(static_cast<char>(' ' + corpusRng.below(94)));
        expected.push_back(line);
        wire += line;
        wire += "\n";
    }

    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        Rng rng(seed);
        svc::LineFramer framer;
        std::vector<std::string> got;
        std::size_t off = 0;
        while (off < wire.size()) {
            std::size_t chunk =
                1 + static_cast<std::size_t>(rng.below(257));
            chunk = std::min(chunk, wire.size() - off);
            ASSERT_TRUE(framer.feed(wire.data() + off, chunk).ok());
            off += chunk;
            // Drain lazily on odd rolls, eagerly on even ones.
            if (rng.below(2) == 0) {
                while (auto line = framer.next())
                    got.push_back(std::move(*line));
            }
        }
        while (auto line = framer.next())
            got.push_back(std::move(*line));
        EXPECT_EQ(got, expected) << "split schedule seed " << seed;
        EXPECT_EQ(framer.buffered(), 0u);
    }
}

TEST(FleetFraming, ResetDropsHalfALine)
{
    svc::LineFramer framer;
    const std::string partial = "half-a-li";
    ASSERT_TRUE(framer.feed(partial.data(), partial.size()).ok());
    framer.reset();
    const std::string fresh = "ne\nclean\n";
    ASSERT_TRUE(framer.feed(fresh.data(), fresh.size()).ok());
    // The pre-reset bytes are gone: the first popped line is only what
    // arrived after the reset.
    EXPECT_EQ(framer.next().value(), "ne");
    EXPECT_EQ(framer.next().value(), "clean");
}

// -- endpoint classification ----------------------------------------------

TEST(FleetEndpoint, PathsAndHostPortsAreToldApart)
{
    EXPECT_FALSE(svc::isTcpEndpoint("/tmp/dcfb.sock"));
    EXPECT_FALSE(svc::isTcpEndpoint("dcfb.sock"));
    EXPECT_FALSE(svc::isTcpEndpoint("./dir:with:colons/sock"));
    EXPECT_TRUE(svc::isTcpEndpoint("127.0.0.1:4100"));
    EXPECT_TRUE(svc::isTcpEndpoint("localhost:0"));

    auto split = svc::splitHostPort("127.0.0.1:4100");
    ASSERT_TRUE(split.ok());
    EXPECT_EQ(split.value().first, "127.0.0.1");
    EXPECT_EQ(split.value().second, "4100");
    EXPECT_FALSE(svc::splitHostPort("nohost").ok());
    EXPECT_FALSE(svc::splitHostPort(":4100").ok());
    EXPECT_FALSE(svc::splitHostPort("host:").ok());
}

// -- consistent-hash ring -------------------------------------------------

/** 1k synthetic content keys shaped like real cache fingerprints. */
std::vector<std::string>
syntheticKeys(std::size_t n)
{
    std::vector<std::string> keys;
    keys.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        keys.push_back(svc::fnv1aHex("cell-" + std::to_string(i)));
    return keys;
}

TEST(FleetHashRing, PlacementIsDeterministic)
{
    svc::HashRing a;
    svc::HashRing b;
    for (const char *node : {"w1", "w2", "w3"}) {
        a.add(node);
        b.add(node);
    }
    for (const std::string &key : syntheticKeys(1000))
        EXPECT_EQ(a.owner(key), b.owner(key));
}

TEST(FleetHashRing, InsertionOrderDoesNotMatter)
{
    svc::HashRing a;
    a.add("w1");
    a.add("w2");
    a.add("w3");
    svc::HashRing b;
    b.add("w3");
    b.add("w1");
    b.add("w2");
    for (const std::string &key : syntheticKeys(1000))
        EXPECT_EQ(a.owner(key), b.owner(key));
}

TEST(FleetHashRing, OneThousandKeysSpreadAcrossThreeWorkers)
{
    svc::HashRing ring;
    ring.add("w1");
    ring.add("w2");
    ring.add("w3");
    std::map<std::string, std::size_t> load;
    for (const std::string &key : syntheticKeys(1000))
        ++load[ring.owner(key)];
    ASSERT_EQ(load.size(), 3u);
    for (const auto &[node, count] : load) {
        // Perfect balance is 333 each; 64 vnodes keeps every worker
        // within a loose band — no worker starved, none doubled up.
        EXPECT_GE(count, 150u) << node;
        EXPECT_LE(count, 550u) << node;
    }
}

TEST(FleetHashRing, JoinMovesOnlyItsOwnShare)
{
    svc::HashRing ring;
    ring.add("w1");
    ring.add("w2");
    ring.add("w3");
    std::vector<std::string> keys = syntheticKeys(1000);
    std::map<std::string, std::string> before;
    for (const std::string &key : keys)
        before[key] = ring.owner(key);

    ring.add("w4");
    std::size_t moved = 0;
    for (const std::string &key : keys) {
        const std::string &now = ring.owner(key);
        if (now != before[key]) {
            ++moved;
            // Every moved key moved TO the joiner, never between
            // incumbents — the consistent-hashing contract.
            EXPECT_EQ(now, "w4");
        }
    }
    // The joiner should take roughly 1/4 of the keyspace, and a join
    // must never reshuffle the bulk of the ring.
    EXPECT_GT(moved, 100u);
    EXPECT_LT(moved, 450u);
}

TEST(FleetHashRing, LeaveRestoresThePriorPlacement)
{
    svc::HashRing ring;
    ring.add("w1");
    ring.add("w2");
    ring.add("w3");
    std::vector<std::string> keys = syntheticKeys(1000);
    std::map<std::string, std::string> before;
    for (const std::string &key : keys)
        before[key] = ring.owner(key);

    ring.add("w4");
    ring.remove("w4");
    for (const std::string &key : keys)
        EXPECT_EQ(ring.owner(key), before[key]);

    // Removing an incumbent only re-homes that incumbent's keys.
    ring.remove("w2");
    for (const std::string &key : keys) {
        if (before[key] != "w2")
            EXPECT_EQ(ring.owner(key), before[key]);
        else
            EXPECT_NE(ring.owner(key), "w2");
    }
}

TEST(FleetHashRing, EmptyRingOwnsNothing)
{
    svc::HashRing ring;
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.owner("anything"), "");
    ring.add("w1");
    EXPECT_EQ(ring.owner("anything"), "w1");
    ring.remove("w1");
    EXPECT_EQ(ring.owner("anything"), "");
}

// -- TCP transport (exec-filtered: spawns server threads) -----------------

svc::ServerConfig
tcpServerConfig(const std::string &tag)
{
    svc::ServerConfig config;
    (void)tag;
    config.listenAddr = "127.0.0.1:0"; // ephemeral port
    config.jobs = 1;
    config.queueCapacity = 8;
    config.retryAfterMs = 10;
    config.defaultWindows = tinyWindows();
    config.configHook = shrink;
    return config;
}

TEST(TcpTransport, EphemeralPortRoundTrip)
{
    GlobalCacheGuard guard;
    svc::Server server(tcpServerConfig("rt"));
    ASSERT_TRUE(server.start().ok());
    ASSERT_GT(server.tcpPort(), 0);

    svc::Client client;
    std::string endpoint =
        "127.0.0.1:" + std::to_string(server.tcpPort());
    ASSERT_TRUE(client.connect(endpoint).ok());

    obs::JsonValue ping = obs::JsonValue::object();
    ping["op"] = "ping";
    auto reply = client.request(ping);
    ASSERT_TRUE(reply.ok());
    EXPECT_TRUE(reply.value().find("ok")->asBool());
    server.shutdown();
}

TEST(TcpTransport, SubmitAndWaitMatchesUnixSocketResult)
{
    GlobalCacheGuard guard;
    // Same job over both transports must produce the identical result
    // document — the transport is invisible to the protocol.
    svc::ServerConfig config = tcpServerConfig("both");
    config.socketPath = scratchDir("both") + "/dcfb.sock";
    svc::Server server(config);
    ASSERT_TRUE(server.start().ok());

    obs::JsonValue submit = obs::JsonValue::object();
    submit["op"] = "submit";
    submit["workload"] = "Web (Apache)";
    submit["preset"] = "SN4L";
    submit["seed"] = std::uint64_t{7};

    svc::Client tcp;
    ASSERT_TRUE(
        tcp.connect("127.0.0.1:" + std::to_string(server.tcpPort()))
            .ok());
    auto viaTcp = tcp.submitAndWait(submit);
    ASSERT_TRUE(viaTcp.ok());

    svc::Client unix_client;
    ASSERT_TRUE(unix_client.connect(config.socketPath).ok());
    auto viaUnix = unix_client.submitAndWait(submit);
    ASSERT_TRUE(viaUnix.ok());

    EXPECT_EQ(viaTcp.value().find("result")->dump(),
              viaUnix.value().find("result")->dump());
    server.shutdown();
}

TEST(TcpTransport, FaultInjectionAppliesOverTcp)
{
    GlobalCacheGuard guard;
    // The --svc-inject plane sits in the shared connection handler, so
    // reply-frame faults must fire over TCP exactly as over the Unix
    // socket — and the client retry machinery must ride them out.
    svc::ServerConfig config = tcpServerConfig("inject");
    config.svcInjectPlan =
        rt::parseSvcFaultPlan("drop:rate=0.4,seed=5").value();
    svc::Server server(config);
    ASSERT_TRUE(server.start().ok());

    svc::Client client;
    svc::RetryPolicy policy;
    policy.recvTimeoutMs = 200; // swallowed frames surface fast
    policy.submitBackoffMs = 10;
    policy.pollMs = 10;
    policy.jitterSeed = 42;
    client.setRetryPolicy(policy);
    ASSERT_TRUE(
        client.connect("127.0.0.1:" + std::to_string(server.tcpPort()))
            .ok());

    obs::JsonValue submit = obs::JsonValue::object();
    submit["op"] = "submit";
    submit["workload"] = "Web (Apache)";
    submit["preset"] = "NL";
    submit["seed"] = std::uint64_t{3};
    auto reply = client.submitAndWait(submit, 200);
    ASSERT_TRUE(reply.ok()) << reply.error().render();
    EXPECT_TRUE(reply.value().find("result") != nullptr);
    server.shutdown();
}

// -- connect retry (exec-filtered: thread + sleeps) -----------------------

TEST(FleetConnectRetry, AbsorbsADaemonThatBindsLate)
{
    GlobalCacheGuard guard;
    // Fleet startup races the coordinator against its workers: the
    // client must absorb the window where nothing is listening yet.
    std::string socket = scratchDir("late") + "/late.sock";
    svc::Server server(tcpServerConfig("late"));

    svc::ServerConfig config;
    config.socketPath = socket;
    config.jobs = 1;
    config.defaultWindows = tinyWindows();
    config.configHook = shrink;
    svc::Server late(config);

    std::thread binder([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        ASSERT_TRUE(late.start().ok());
    });

    svc::Client client;
    svc::RetryPolicy policy;
    policy.submitBackoffMs = 20;
    policy.capMs = 100;
    policy.budgetMs = 5000;
    policy.jitterSeed = 7;
    client.setRetryPolicy(policy);
    auto connected = client.connectWithRetry(socket);
    binder.join();
    ASSERT_TRUE(connected.ok()) << connected.error().render();

    obs::JsonValue ping = obs::JsonValue::object();
    ping["op"] = "ping";
    EXPECT_TRUE(client.request(ping).ok());
    late.shutdown();
}

TEST(FleetConnectRetry, BudgetBoundsTheWait)
{
    svc::Client client;
    svc::RetryPolicy policy;
    policy.submitBackoffMs = 20;
    policy.capMs = 50;
    policy.budgetMs = 200;
    policy.jitterSeed = 9;
    client.setRetryPolicy(policy);

    auto start = std::chrono::steady_clock::now();
    auto connected =
        client.connectWithRetry("/nonexistent/dir/never.sock");
    auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    ASSERT_FALSE(connected.ok());
    // The budget caps cumulative sleeping; generous ceiling for slow CI.
    EXPECT_LT(elapsed_ms, 2000);
    EXPECT_NE(connected.error().render().find("attempts"),
              std::string::npos);
}

TEST(FleetConnectRetry, NonTransientErrorsFailImmediately)
{
    svc::Client client;
    svc::RetryPolicy policy;
    policy.submitBackoffMs = 500;
    policy.budgetMs = 60000;
    client.setRetryPolicy(policy);
    // An unresolvable host is not a "daemon not up yet" condition; the
    // retry loop must not burn the budget on it.
    auto start = std::chrono::steady_clock::now();
    auto connected =
        client.connectWithRetry("host.invalid.dcfb.test:1");
    auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    ASSERT_FALSE(connected.ok());
    EXPECT_LT(elapsed_ms, 5000);
}

// -- coordinator (exec-filtered: real workers + threads) ------------------

/** One in-process worker daemon on a Unix socket with its own result
 *  cache, as a fleet member. */
struct TestWorker
{
    std::string socket;
    std::unique_ptr<svc::Server> server;
};

TestWorker
makeWorker(const std::string &tag)
{
    TestWorker w;
    std::string dir = scratchDir(tag);
    w.socket = dir + "/worker.sock";
    svc::ServerConfig config;
    config.socketPath = w.socket;
    config.jobs = 1;
    config.queueCapacity = 16;
    config.retryAfterMs = 10;
    config.defaultWindows = tinyWindows();
    config.configHook = shrink;
    config.cacheDir = dir + "/cache"; // the federated half of the design
    w.server = std::make_unique<svc::Server>(config);
    EXPECT_TRUE(w.server->start().ok());
    return w;
}

svc::CoordinatorConfig
coordConfig(const std::vector<svc::WorkerSpec> &workers)
{
    svc::CoordinatorConfig config;
    config.workers = workers;
    config.defaultWindows = tinyWindows();
    config.configHook = shrink;
    config.connectBudgetMs = 500; // dead endpoints fail fast in tests
    config.recvTimeoutMs = 2000;
    config.pollMs = 5;
    config.jitterSeed = 11;
    return config;
}

/** Drive one request through handleLine, collecting every event. */
std::vector<obs::JsonValue>
drive(svc::Coordinator &coord, const std::string &line)
{
    std::vector<obs::JsonValue> events;
    coord.handleLine(line,
                     [&](const obs::JsonValue &ev) { events.push_back(ev); });
    return events;
}

const std::string kSmallGrid =
    R"j({"op":"grid","workloads":["Web (Apache)","Web Search"],)j"
    R"j("presets":["Baseline","NL"]})j";

// A wider grid that exercises the competitor presets (FDIP, MicroBTB)
// through the fabric.  Eight cells also make the placement statistics
// less fragile: with three ring members every worker owns some cells.
const std::string kWideGrid =
    R"j({"op":"grid","workloads":["Web (Apache)","Web Search"],)j"
    R"j("presets":["Baseline","NL","FDIP","MicroBTB"]})j";

TEST(FleetCoordinator, ColdGridShardsSimulatesAndMerges)
{
    GlobalCacheGuard guard;
    TestWorker w1 = makeWorker("cold_w1");
    TestWorker w2 = makeWorker("cold_w2");
    svc::Coordinator coord(
        coordConfig({{"w1", w1.socket}, {"w2", w2.socket}}));
    ASSERT_TRUE(coord.start().ok());

    std::vector<obs::JsonValue> events = drive(coord, kSmallGrid);
    ASSERT_GE(events.size(), 2u);

    const obs::JsonValue &accepted = events.front();
    EXPECT_EQ(accepted.find("event")->asString(), "accepted");
    EXPECT_EQ(accepted.find("cells")->asUint(), 4u);
    EXPECT_EQ(accepted.find("schema")->asString(), "dcfb-coord-v1");

    const obs::JsonValue &done = events.back();
    ASSERT_EQ(done.find("event")->asString(), "done") << done.dump();
    EXPECT_EQ(done.find("cells")->asUint(), 4u);
    EXPECT_EQ(done.find("simulated")->asUint(), 4u);
    EXPECT_EQ(done.find("cached")->asUint(), 0u);
    EXPECT_EQ(done.find("worker_deaths")->asUint(), 0u);

    // One streamed "cell" event per cell, between accepted and done.
    std::size_t cellEvents = 0;
    for (const obs::JsonValue &ev : events)
        if (ev.find("event")->asString() == "cell")
            ++cellEvents;
    EXPECT_EQ(cellEvents, 4u);

    // The merged report: request order, fingerprint keys, results.
    const obs::JsonValue *report = done.find("report");
    ASSERT_NE(report, nullptr);
    EXPECT_EQ(report->find("schema")->asString(), "dcfb-grid-v1");
    const obs::JsonValue *cells = report->find("cells");
    ASSERT_NE(cells, nullptr);
    ASSERT_EQ(cells->size(), 4u);
    EXPECT_EQ(cells->items()[0].find("workload")->asString(),
              "Web (Apache)");
    EXPECT_EQ(cells->items()[0].find("preset")->asString(), "Baseline");
    EXPECT_EQ(cells->items()[1].find("preset")->asString(), "NL");
    EXPECT_EQ(cells->items()[2].find("workload")->asString(),
              "Web Search");
    for (const obs::JsonValue &cell : cells->items()) {
        EXPECT_EQ(cell.find("key")->asString().size(), 16u);
        EXPECT_NE(cell.find("result"), nullptr);
    }
    // Determinism: nothing fleet-shaped (worker names, cached flags,
    // timings) may leak into the report.
    EXPECT_EQ(report->dump().find("worker"), std::string::npos);
    EXPECT_EQ(report->dump().find("cached"), std::string::npos);

    coord.shutdown();
    w1.server->shutdown();
    w2.server->shutdown();
}

TEST(FleetCoordinator, WarmFleetAnswersWithZeroSimulations)
{
    GlobalCacheGuard guard;
    TestWorker w1 = makeWorker("warm_w1");
    TestWorker w2 = makeWorker("warm_w2");
    svc::Coordinator coord(
        coordConfig({{"w1", w1.socket}, {"w2", w2.socket}}));
    ASSERT_TRUE(coord.start().ok());

    std::vector<obs::JsonValue> cold = drive(coord, kSmallGrid);
    ASSERT_EQ(cold.back().find("event")->asString(), "done");

    std::vector<obs::JsonValue> warm = drive(coord, kSmallGrid);
    const obs::JsonValue &done = warm.back();
    ASSERT_EQ(done.find("event")->asString(), "done") << done.dump();
    // The tentpole guarantee: a warm fleet answers a repeat grid
    // entirely from the federated cache.
    EXPECT_EQ(done.find("simulated")->asUint(), 0u);
    EXPECT_EQ(done.find("cached")->asUint(), 4u);

    // And the merged reports are byte-identical.
    EXPECT_EQ(cold.back().find("report")->dump(),
              done.find("report")->dump());

    coord.shutdown();
    w1.server->shutdown();
    w2.server->shutdown();
}

TEST(FleetCoordinator, FleetSizeDoesNotChangeTheReportBytes)
{
    GlobalCacheGuard guard;
    TestWorker solo = makeWorker("size_solo");
    svc::Coordinator one(coordConfig({{"solo", solo.socket}}));
    ASSERT_TRUE(one.start().ok());
    std::vector<obs::JsonValue> ref = drive(one, kSmallGrid);
    ASSERT_EQ(ref.back().find("event")->asString(), "done");

    TestWorker w1 = makeWorker("size_w1");
    TestWorker w2 = makeWorker("size_w2");
    TestWorker w3 = makeWorker("size_w3");
    svc::Coordinator three(coordConfig(
        {{"w1", w1.socket}, {"w2", w2.socket}, {"w3", w3.socket}}));
    ASSERT_TRUE(three.start().ok());
    std::vector<obs::JsonValue> wide = drive(three, kSmallGrid);
    ASSERT_EQ(wide.back().find("event")->asString(), "done");

    EXPECT_EQ(ref.back().find("report")->dump(),
              wide.back().find("report")->dump());

    one.shutdown();
    three.shutdown();
    solo.server->shutdown();
    w1.server->shutdown();
    w2.server->shutdown();
    w3.server->shutdown();
}

TEST(FleetCoordinator, CompetitorPresetsMergeDeterministically)
{
    // The dcfb-grid-v1 merge must stay a pure function of the cell set
    // when the grid includes the competitor presets: FDIP and MicroBTB
    // cells sharded across two workers produce the same report bytes as
    // the same grid on one worker.
    GlobalCacheGuard guard;
    TestWorker solo = makeWorker("comp_solo");
    svc::Coordinator one(coordConfig({{"solo", solo.socket}}));
    ASSERT_TRUE(one.start().ok());
    std::vector<obs::JsonValue> ref = drive(one, kWideGrid);
    ASSERT_EQ(ref.back().find("event")->asString(), "done");
    EXPECT_EQ(ref.back().find("cells")->asUint(), 8u);

    TestWorker w1 = makeWorker("comp_w1");
    TestWorker w2 = makeWorker("comp_w2");
    svc::Coordinator two(
        coordConfig({{"w1", w1.socket}, {"w2", w2.socket}}));
    ASSERT_TRUE(two.start().ok());
    std::vector<obs::JsonValue> wide = drive(two, kWideGrid);
    ASSERT_EQ(wide.back().find("event")->asString(), "done");

    EXPECT_EQ(ref.back().find("report")->dump(),
              wide.back().find("report")->dump());

    one.shutdown();
    two.shutdown();
    solo.server->shutdown();
    w1.server->shutdown();
    w2.server->shutdown();
}

TEST(FleetCoordinator, DeadWorkerIsRebalancedAway)
{
    GlobalCacheGuard guard;
    TestWorker w1 = makeWorker("dead_w1");
    TestWorker w2 = makeWorker("dead_w2");
    // The third worker does not exist: every cell placed on it fails
    // its connect budget and must be re-placed on the survivors.
    std::string ghost = scratchDir("dead_ghost") + "/ghost.sock";
    svc::Coordinator coord(coordConfig(
        {{"w1", w1.socket}, {"w2", w2.socket}, {"ghost", ghost}}));
    ASSERT_TRUE(coord.start().ok());

    // Eight cells over a three-member ring: the ghost deterministically
    // owns at least one, so the death path always fires.  (Exactly how
    // many it owns is a property of the fingerprint hashes — pinning it
    // to a constant made the test break every time a config knob joined
    // the fingerprint.)
    std::vector<obs::JsonValue> events = drive(coord, kWideGrid);
    const obs::JsonValue &done = events.back();
    ASSERT_EQ(done.find("event")->asString(), "done") << done.dump();
    EXPECT_EQ(done.find("cells")->asUint(), 8u);
    EXPECT_GE(done.find("worker_deaths")->asUint(), 1u);

    // The grid completed correctly despite the death: the report is
    // byte-identical to a healthy fleet's.
    TestWorker ref = makeWorker("dead_ref");
    svc::Coordinator healthy(coordConfig({{"ref", ref.socket}}));
    ASSERT_TRUE(healthy.start().ok());
    std::vector<obs::JsonValue> refEvents = drive(healthy, kWideGrid);
    EXPECT_EQ(done.find("report")->dump(),
              refEvents.back().find("report")->dump());

    coord.shutdown();
    healthy.shutdown();
    w1.server->shutdown();
    w2.server->shutdown();
    ref.server->shutdown();
}

TEST(FleetCoordinator, SeedRidesIntoEveryCell)
{
    GlobalCacheGuard guard;
    TestWorker w = makeWorker("seed_w");
    svc::Coordinator coord(coordConfig({{"w", w.socket}}));
    ASSERT_TRUE(coord.start().ok());

    const std::string seeded =
        R"j({"op":"grid","workloads":["Web (Apache)"],)j"
        R"j("presets":["Baseline"],"seed":99})j";
    std::vector<obs::JsonValue> a = drive(coord, seeded);
    ASSERT_EQ(a.back().find("event")->asString(), "done");
    EXPECT_EQ(a.back().find("report")->find("seed")->asUint(), 99u);

    // A different seed is a different fingerprint: nothing cached.
    const std::string reseeded =
        R"j({"op":"grid","workloads":["Web (Apache)"],)j"
        R"j("presets":["Baseline"],"seed":100})j";
    std::vector<obs::JsonValue> b = drive(coord, reseeded);
    ASSERT_EQ(b.back().find("event")->asString(), "done");
    EXPECT_EQ(b.back().find("cached")->asUint(), 0u);
    EXPECT_NE(a.back().find("report")->dump(),
              b.back().find("report")->dump());

    coord.shutdown();
    w.server->shutdown();
}

TEST(FleetCoordinator, StatsExposeRingAndLiveWorkers)
{
    GlobalCacheGuard guard;
    TestWorker w1 = makeWorker("stats_w1");
    TestWorker w2 = makeWorker("stats_w2");
    svc::Coordinator coord(
        coordConfig({{"w1", w1.socket}, {"w2", w2.socket}}));
    ASSERT_TRUE(coord.start().ok());

    (void)drive(coord, kSmallGrid);
    std::vector<obs::JsonValue> events =
        drive(coord, R"({"op":"stats"})");
    ASSERT_EQ(events.size(), 1u);
    const obs::JsonValue &stats = events.front();
    EXPECT_EQ(stats.find("schema")->asString(), "dcfb-coord-v1");
    ASSERT_NE(stats.find("ring"), nullptr);
    EXPECT_EQ(stats.find("ring")->find("workers")->size(), 2u);

    const obs::JsonValue *workers = stats.find("workers");
    ASSERT_NE(workers, nullptr);
    std::uint64_t alive = 0;
    for (const obs::JsonValue &w : workers->items())
        if (w.find("alive")->asBool())
            ++alive;
    EXPECT_EQ(alive, 2u);
    // The aggregated federated view: the grid's sims all show up.
    EXPECT_EQ(stats.find("fleet")->find("sims_executed")->asUint(), 4u);

    coord.shutdown();
    w1.server->shutdown();
    w2.server->shutdown();
}

TEST(FleetCoordinator, DrainRejectsNewGrids)
{
    GlobalCacheGuard guard;
    TestWorker w = makeWorker("drain_w");
    svc::Coordinator coord(coordConfig({{"w", w.socket}}));
    ASSERT_TRUE(coord.start().ok());

    std::vector<obs::JsonValue> drained =
        drive(coord, R"({"op":"drain"})");
    ASSERT_EQ(drained.size(), 1u);
    EXPECT_TRUE(coord.draining());

    std::vector<obs::JsonValue> events = drive(coord, kSmallGrid);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_FALSE(events.front().find("ok")->asBool());

    coord.shutdown();
    w.server->shutdown();
}

TEST(FleetCoordinator, MalformedRequestsAreTypedErrors)
{
    GlobalCacheGuard guard;
    TestWorker w = makeWorker("bad_w");
    svc::Coordinator coord(coordConfig({{"w", w.socket}}));
    ASSERT_TRUE(coord.start().ok());

    for (const char *line :
         {"not json", "{}", R"({"op":"unknown"})",
          R"({"op":"grid","workloads":["No Such Workload"]})",
          R"({"op":"grid","presets":["NoSuchPreset"]})"}) {
        std::vector<obs::JsonValue> events = drive(coord, line);
        ASSERT_GE(events.size(), 1u) << line;
        EXPECT_FALSE(events.back().find("ok")->asBool()) << line;
    }

    coord.shutdown();
    w.server->shutdown();
}

TEST(FleetCoordinator, StartRejectsABrokenFleetSpec)
{
    svc::CoordinatorConfig empty;
    svc::Coordinator none(empty);
    EXPECT_FALSE(none.start().ok());

    svc::CoordinatorConfig dup;
    dup.workers = {{"w", "/tmp/a.sock"}, {"w", "/tmp/b.sock"}};
    svc::Coordinator twice(dup);
    EXPECT_FALSE(twice.start().ok());
}

} // namespace
} // namespace dcfb
