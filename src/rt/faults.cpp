#include "rt/faults.h"

#include <cstdio>
#include <cstdlib>

namespace dcfb::rt {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None:
        return "none";
      case FaultKind::Drop:
        return "drop";
      case FaultKind::Delay:
        return "delay";
      case FaultKind::Corrupt:
        return "corrupt";
      case FaultKind::Backpressure:
        return "backpressure";
    }
    return "?";
}

namespace {

Error
specError(std::string_view spec, std::string why)
{
    Error err(ErrorKind::Fault, "bad --inject spec: " + std::move(why));
    err.with("spec", std::string(spec))
        .with("syntax", "<kind>[:key=value[,key=value]...]")
        .with("kinds", "drop | delay | corrupt | backpressure | none")
        .with("keys", "rate=<0..1>  cycles=<delay cycles>  seed=<uint>");
    return err;
}

} // namespace

Expected<FaultPlan>
parseFaultPlan(std::string_view spec)
{
    FaultPlan plan;

    std::string_view kind = spec;
    std::string_view opts;
    if (auto colon = spec.find(':'); colon != std::string_view::npos) {
        kind = spec.substr(0, colon);
        opts = spec.substr(colon + 1);
        if (opts.empty())
            return specError(spec, "trailing ':' without any key=value");
    }

    if (kind == "none" || kind == "off")
        plan.kind = FaultKind::None;
    else if (kind == "drop")
        plan.kind = FaultKind::Drop;
    else if (kind == "delay")
        plan.kind = FaultKind::Delay;
    else if (kind == "corrupt")
        plan.kind = FaultKind::Corrupt;
    else if (kind == "backpressure")
        plan.kind = FaultKind::Backpressure;
    else
        return specError(spec,
                         "unknown fault kind '" + std::string(kind) + "'");

    while (!opts.empty()) {
        std::string_view item = opts;
        if (auto comma = opts.find(','); comma != std::string_view::npos) {
            item = opts.substr(0, comma);
            opts = opts.substr(comma + 1);
        } else {
            opts = {};
        }
        auto eq = item.find('=');
        if (eq == std::string_view::npos || eq == 0 ||
            eq + 1 == item.size()) {
            return specError(spec, "expected key=value, got '" +
                                       std::string(item) + "'");
        }
        std::string_view key = item.substr(0, eq);
        std::string value(item.substr(eq + 1));
        char *end = nullptr;
        if (key == "rate") {
            double rate = std::strtod(value.c_str(), &end);
            if (end != value.c_str() + value.size() || rate < 0.0 ||
                rate > 1.0) {
                return specError(spec, "rate must be a number in [0,1], "
                                       "got '" + value + "'");
            }
            plan.rate = rate;
        } else if (key == "cycles") {
            std::uint64_t cycles = std::strtoull(value.c_str(), &end, 10);
            if (end != value.c_str() + value.size() || cycles == 0) {
                return specError(spec, "cycles must be a positive integer, "
                                       "got '" + value + "'");
            }
            plan.delayCycles = cycles;
        } else if (key == "seed") {
            std::uint64_t seed = std::strtoull(value.c_str(), &end, 10);
            if (end != value.c_str() + value.size()) {
                return specError(spec, "seed must be an unsigned integer, "
                                       "got '" + value + "'");
            }
            plan.seed = seed;
        } else {
            return specError(spec,
                             "unknown key '" + std::string(key) + "'");
        }
    }
    return plan;
}

const char *
svcFaultKindName(SvcFaultKind kind)
{
    switch (kind) {
      case SvcFaultKind::None:
        return "none";
      case SvcFaultKind::Drop:
        return "drop";
      case SvcFaultKind::Delay:
        return "delay";
      case SvcFaultKind::Truncate:
        return "truncate";
      case SvcFaultKind::Reset:
        return "reset";
    }
    return "?";
}

namespace {

Error
svcSpecError(std::string_view spec, std::string why)
{
    Error err(ErrorKind::Fault, "bad --svc-inject spec: " + std::move(why));
    err.with("spec", std::string(spec))
        .with("syntax", "<kind>[:key=value[,key=value]...]")
        .with("kinds", "drop | delay | truncate | reset | none")
        .with("keys", "rate=<0..1>  delay_ms=<ms>  seed=<uint>");
    return err;
}

} // namespace

Expected<SvcFaultPlan>
parseSvcFaultPlan(std::string_view spec)
{
    SvcFaultPlan plan;

    std::string_view kind = spec;
    std::string_view opts;
    if (auto colon = spec.find(':'); colon != std::string_view::npos) {
        kind = spec.substr(0, colon);
        opts = spec.substr(colon + 1);
        if (opts.empty())
            return svcSpecError(spec, "trailing ':' without any key=value");
    }

    if (kind == "none" || kind == "off")
        plan.kind = SvcFaultKind::None;
    else if (kind == "drop")
        plan.kind = SvcFaultKind::Drop;
    else if (kind == "delay")
        plan.kind = SvcFaultKind::Delay;
    else if (kind == "truncate")
        plan.kind = SvcFaultKind::Truncate;
    else if (kind == "reset")
        plan.kind = SvcFaultKind::Reset;
    else
        return svcSpecError(
            spec, "unknown fault kind '" + std::string(kind) + "'");

    while (!opts.empty()) {
        std::string_view item = opts;
        if (auto comma = opts.find(','); comma != std::string_view::npos) {
            item = opts.substr(0, comma);
            opts = opts.substr(comma + 1);
        } else {
            opts = {};
        }
        auto eq = item.find('=');
        if (eq == std::string_view::npos || eq == 0 ||
            eq + 1 == item.size()) {
            return svcSpecError(spec, "expected key=value, got '" +
                                          std::string(item) + "'");
        }
        std::string_view key = item.substr(0, eq);
        std::string value(item.substr(eq + 1));
        char *end = nullptr;
        if (key == "rate") {
            double rate = std::strtod(value.c_str(), &end);
            if (end != value.c_str() + value.size() || rate < 0.0 ||
                rate > 1.0) {
                return svcSpecError(spec, "rate must be a number in [0,1], "
                                          "got '" + value + "'");
            }
            plan.rate = rate;
        } else if (key == "delay_ms") {
            std::uint64_t ms = std::strtoull(value.c_str(), &end, 10);
            if (end != value.c_str() + value.size() || ms == 0) {
                return svcSpecError(spec,
                                    "delay_ms must be a positive integer, "
                                    "got '" + value + "'");
            }
            plan.delayMs = ms;
        } else if (key == "seed") {
            std::uint64_t seed = std::strtoull(value.c_str(), &end, 10);
            if (end != value.c_str() + value.size()) {
                return svcSpecError(spec,
                                    "seed must be an unsigned integer, "
                                    "got '" + value + "'");
            }
            plan.seed = seed;
        } else {
            return svcSpecError(spec,
                                "unknown key '" + std::string(key) + "'");
        }
    }
    return plan;
}

std::string
svcFaultPlanSpec(const SvcFaultPlan &plan)
{
    if (plan.kind == SvcFaultKind::None)
        return "none";
    std::string out = svcFaultKindName(plan.kind);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", plan.rate);
    out += ":rate=";
    out += buf;
    if (plan.kind == SvcFaultKind::Delay) {
        out += ",delay_ms=";
        out += std::to_string(plan.delayMs);
    }
    out += ",seed=";
    out += std::to_string(plan.seed);
    return out;
}

std::string
faultPlanSpec(const FaultPlan &plan)
{
    if (plan.kind == FaultKind::None)
        return "none";
    std::string out = faultKindName(plan.kind);
    // %g-style trimming without locale surprises: print the rate with up
    // to 6 significant digits and strip trailing zeros.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", plan.rate);
    out += ":rate=";
    out += buf;
    if (plan.kind == FaultKind::Delay) {
        out += ",cycles=";
        out += std::to_string(plan.delayCycles);
    }
    out += ",seed=";
    out += std::to_string(plan.seed);
    return out;
}

} // namespace dcfb::rt
