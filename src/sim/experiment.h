/**
 * @file
 * Experiment grid runner: run (workload x design) matrices with shared
 * windows and cache results, plus the geometric/arithmetic means the
 * paper's "Average" bars use.
 *
 * Every cell of the grid is an independent, deterministically-seeded
 * simulation, so run() schedules cells onto an exec::Pool and merges
 * the per-cell results after the barrier (see DESIGN.md "Execution
 * model").  The effective worker count comes from exec::resolveJobs()
 * (the bench harness's `--jobs` flag); one job reproduces the
 * historical serial runner bit for bit.  Workload images are resolved
 * through the process-wide workload::ImageCache, so the N designs of a
 * workload -- and concurrent cells -- share one immutable program
 * instead of rebuilding it per cell.
 */

#ifndef DCFB_SIM_EXPERIMENT_H
#define DCFB_SIM_EXPERIMENT_H

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "exec/schedule.h"
#include "sim/simulator.h"
#include "workload/profiles.h"

namespace dcfb::sim {

/** Keyed results of a (workload x design) sweep. */
class ExperimentGrid
{
  public:
    using ConfigHook = std::function<void(SystemConfig &)>;

    /**
     * @param presets   designs to evaluate
     * @param windows   warmup/measure windows
     * @param hook      optional per-config tweak (sweeps)
     * @param vl        build variable-length-ISA workloads
     */
    ExperimentGrid(std::vector<Preset> presets,
                   RunWindows windows = RunWindows{},
                   ConfigHook hook = nullptr, bool vl = false);

    /** Run the full 7-workload grid. */
    void run();

    /** Run a subset of workloads (faster benches). */
    void run(const std::vector<std::string> &workloads);

    /**
     * Run a subset with an explicit worker count.  @p jobs of 0 defers
     * to exec::resolveJobs() (the `--jobs` flag / hardware default); a
     * value of 1 runs the cells serially, in order, on this thread.
     * Cell results are identical for every jobs value; a failing cell
     * raises the same rt::Exception either way (serially at the failing
     * cell, in parallel after the barrier).
     */
    void run(const std::vector<std::string> &workloads, unsigned jobs);

    /** Result for a (workload, design) cell; nullptr when not run. */
    const RunResult *tryAt(const std::string &workload,
                           Preset preset) const;

    /** tryAt() for legacy callers: raises an rt::Exception whose error
     *  lists the cells the grid actually holds. */
    const RunResult &at(const std::string &workload, Preset preset) const;

    const std::vector<std::string> &workloads() const { return names; }

    /** Scheduling telemetry of the last run(): effective jobs, wall
     *  time, per-cell wall times and pool occupancy.  Also pushed to
     *  exec::ExecLog for the bench harness's JSON report. */
    const exec::ExecReport &execReport() const { return lastExec; }

    /** Arithmetic mean of a per-workload metric. */
    double
    mean(Preset preset,
         const std::function<double(const RunResult &)> &metric) const;

    /** Geometric mean of per-workload speedups over a baseline preset. */
    double gmeanSpeedup(Preset design, Preset baseline) const;

  private:
    std::vector<Preset> presets;
    RunWindows windows;
    ConfigHook hook;
    bool variableLength;
    std::vector<std::string> names;
    std::map<std::pair<std::string, Preset>, RunResult> results;
    exec::ExecReport lastExec;
};

} // namespace dcfb::sim

#endif // DCFB_SIM_EXPERIMENT_H
