#include "svc/journal.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <fstream>
#include <sstream>
#include <sys/stat.h>
#include <unistd.h>

#include "svc/fingerprint.h"

namespace dcfb::svc {

namespace {

rt::Error
ioError(const std::string &message, const std::string &path)
{
    return rt::Error(rt::ErrorKind::Result, message)
        .with("path", path)
        .with("errno", std::strerror(errno));
}

/**
 * Wrap a record body as one journal line: the compact dump with
 * `"crc"` appended as the LAST member.  The crc covers the body
 * *without* the crc member, so the decoder can strip the suffix
 * textually and recompute — validation never depends on key order
 * surviving a re-serialization.
 */
std::string
crcWrap(const obs::JsonValue &body)
{
    std::string text = body.dump();
    std::string line = text.substr(0, text.size() - 1); // drop '}'
    line += ",\"crc\":\"";
    line += fnv1aHex(text);
    line += "\"}";
    return line;
}

/** Strip + verify the crc suffix; return the parsed record body. */
rt::Expected<obs::JsonValue>
crcUnwrap(std::string_view line)
{
    static constexpr std::string_view kCrcKey = ",\"crc\":\"";
    static constexpr std::size_t kCrcHexLen = 16;
    auto bad = [&](const char *why) {
        return rt::Error(rt::ErrorKind::Result, "bad journal record")
            .with("why", why);
    };
    // The crc member is always appended last:  ...,"crc":"<16hex>"}
    if (line.size() < kCrcKey.size() + kCrcHexLen + 2 ||
        line.substr(line.size() - 2) != "\"}") {
        return bad("no crc suffix");
    }
    std::size_t pos = line.rfind(kCrcKey);
    if (pos == std::string_view::npos)
        return bad("no crc suffix");
    std::string_view crc =
        line.substr(pos + kCrcKey.size(),
                    line.size() - pos - kCrcKey.size() - 2);
    if (crc.size() != kCrcHexLen)
        return bad("malformed crc");
    std::string body(line.substr(0, pos));
    body += '}';
    if (fnv1aHex(body) != crc)
        return bad("crc mismatch");
    auto doc = obs::JsonValue::parse(body);
    if (!doc || doc->kind() != obs::JsonValue::Kind::Object)
        return bad("body is not a JSON object");
    return std::move(*doc);
}

/** The segment header line (schema pin). */
std::string
headerLine()
{
    obs::JsonValue doc = obs::JsonValue::object();
    doc["type"] = "header";
    doc["schema"] = kJournalSchema;
    return crcWrap(doc);
}

rt::Expected<JournalRecord>
recordFromBody(const obs::JsonValue &body)
{
    auto bad = [&](const char *why) {
        return rt::Error(rt::ErrorKind::Result, "bad journal record")
            .with("why", why);
    };
    const obs::JsonValue *type = body.find("type");
    if (!type || type->kind() != obs::JsonValue::Kind::String)
        return bad("missing type");
    JournalRecord record;
    const std::string &name = type->asString();
    if (name == "admit")
        record.type = JournalRecord::Type::Admit;
    else if (name == "done")
        record.type = JournalRecord::Type::Done;
    else if (name == "failed")
        record.type = JournalRecord::Type::Failed;
    else if (name == "cancelled")
        record.type = JournalRecord::Type::Cancelled;
    else
        return bad("unknown record type");

    const obs::JsonValue *key = body.find("key");
    if (!key || key->kind() != obs::JsonValue::Kind::String ||
        key->asString().empty()) {
        return bad("missing key");
    }
    record.key = key->asString();
    if (const obs::JsonValue *job = body.find("job"))
        record.jobId = job->asUint();

    if (record.type == JournalRecord::Type::Admit) {
        if (const obs::JsonValue *label = body.find("label"))
            record.label = label->asString();
        const obs::JsonValue *spec = body.find("spec");
        if (!spec || spec->kind() != obs::JsonValue::Kind::Object)
            return bad("admit record has no spec");
        record.spec = *spec;
    } else if (record.type == JournalRecord::Type::Failed) {
        if (const obs::JsonValue *code = body.find("error_code"))
            record.errorCode = code->asString();
        if (const obs::JsonValue *text = body.find("error_text"))
            record.errorText = text->asString();
    }
    return record;
}

/** Parse `journal-<NNNNNN>.ndjson`; 0 when @p name is not a segment. */
std::uint64_t
segmentIndexOf(const std::string &name)
{
    static constexpr std::string_view kPrefix = "journal-";
    static constexpr std::string_view kSuffix = ".ndjson";
    if (name.size() <= kPrefix.size() + kSuffix.size() ||
        name.compare(0, kPrefix.size(), kPrefix) != 0 ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) != 0) {
        return 0;
    }
    std::string digits = name.substr(
        kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
    char *end = nullptr;
    std::uint64_t index = std::strtoull(digits.c_str(), &end, 10);
    if (end != digits.c_str() + digits.size())
        return 0;
    return index;
}

/** fsync the journal directory so renames/unlinks are durable. */
void
fsyncDir(const std::string &dir)
{
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

} // namespace

const char *
fsyncPolicyName(FsyncPolicy policy)
{
    switch (policy) {
      case FsyncPolicy::Always:
        return "always";
      case FsyncPolicy::Rotate:
        return "rotate";
      case FsyncPolicy::Never:
        return "never";
    }
    return "?";
}

rt::Expected<FsyncPolicy>
parseFsyncPolicy(std::string_view text)
{
    if (text == "always")
        return FsyncPolicy::Always;
    if (text == "rotate")
        return FsyncPolicy::Rotate;
    if (text == "never")
        return FsyncPolicy::Never;
    return rt::Error(rt::ErrorKind::Config, "bad --journal-fsync value")
        .with("value", std::string(text))
        .with("accepted", "always | rotate | never");
}

const char *
journalRecordTypeName(JournalRecord::Type type)
{
    switch (type) {
      case JournalRecord::Type::Admit:
        return "admit";
      case JournalRecord::Type::Done:
        return "done";
      case JournalRecord::Type::Failed:
        return "failed";
      case JournalRecord::Type::Cancelled:
        return "cancelled";
    }
    return "?";
}

std::string
Journal::encode(const JournalRecord &record)
{
    obs::JsonValue doc = obs::JsonValue::object();
    doc["type"] = journalRecordTypeName(record.type);
    doc["key"] = record.key;
    doc["job"] = record.jobId;
    if (record.type == JournalRecord::Type::Admit) {
        doc["label"] = record.label;
        doc["spec"] = record.spec;
    } else if (record.type == JournalRecord::Type::Failed) {
        doc["error_code"] = record.errorCode;
        doc["error_text"] = record.errorText;
    }
    return crcWrap(doc);
}

rt::Expected<JournalRecord>
Journal::decode(std::string_view line)
{
    auto body = crcUnwrap(line);
    if (!body.ok())
        return body.error();
    const obs::JsonValue *type = body.value().find("type");
    if (type && type->kind() == obs::JsonValue::Kind::String &&
        type->asString() == "header") {
        return rt::Error(rt::ErrorKind::Result, "bad journal record")
            .with("why", "header line is not a record");
    }
    return recordFromBody(body.value());
}

Journal::Journal(Config config_) : config(std::move(config_)) {}

Journal::~Journal()
{
    if (fd >= 0)
        ::close(fd);
}

std::string
Journal::segmentPath(std::uint64_t index) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "journal-%06llu.ndjson",
                  static_cast<unsigned long long>(index));
    return config.dir + "/" + name;
}

rt::Expected<std::vector<JournalRecord>>
Journal::open()
{
    std::lock_guard<std::mutex> lock(mutex);
    if (config.dir.empty())
        return rt::Error(rt::ErrorKind::Config, "empty journal path");
    if (::mkdir(config.dir.c_str(), 0755) != 0 && errno != EEXIST)
        return ioError("cannot create journal directory", config.dir);
    struct stat st{};
    if (::stat(config.dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode))
        return ioError("journal path is not a directory", config.dir);

    segmentsOnDisk.clear();
    {
        DIR *handle = ::opendir(config.dir.c_str());
        if (!handle)
            return ioError("cannot scan journal directory", config.dir);
        while (struct dirent *entry = ::readdir(handle)) {
            if (std::uint64_t index = segmentIndexOf(entry->d_name))
                segmentsOnDisk.push_back(index);
        }
        ::closedir(handle);
    }
    std::sort(segmentsOnDisk.begin(), segmentsOnDisk.end());

    std::vector<JournalRecord> records;
    live.clear();
    for (std::size_t i = 0; i < segmentsOnDisk.size(); ++i) {
        std::string path = segmentPath(segmentsOnDisk[i]);
        std::string content;
        {
            std::ifstream in(path, std::ios::in | std::ios::binary);
            if (!in.is_open())
                return ioError("cannot read journal segment", path);
            std::ostringstream text;
            text << in.rdbuf();
            content = text.str();
        }
        bool lastSegment = (i + 1 == segmentsOnDisk.size());
        // A file that does not end in '\n' carries a torn tail: the
        // final append raced a crash.  Truncate it off the last
        // segment so future appends start on a clean line boundary.
        if (!content.empty() && content.back() != '\n') {
            std::size_t cut = content.rfind('\n');
            std::size_t keep = (cut == std::string::npos) ? 0 : cut + 1;
            if (lastSegment) {
                if (::truncate(path.c_str(),
                               static_cast<off_t>(keep)) != 0) {
                    return ioError("cannot repair torn journal tail",
                                   path);
                }
                ++counters.tornTailsRepaired;
            } else {
                // Segments are rotated atomically; a torn interior
                // segment means external tampering.  Contain, don't
                // refuse: drop the partial line and keep scanning.
                ++counters.checksumRejects;
            }
            content.resize(keep);
        }

        std::uint64_t lineRecords = 0;
        std::size_t start = 0;
        while (start < content.size()) {
            std::size_t end = content.find('\n', start);
            std::string_view line(content.data() + start, end - start);
            start = end + 1;
            if (line.empty())
                continue;
            auto body = crcUnwrap(line);
            if (!body.ok()) {
                // One corrupt line loses one record, never the
                // segment: count it and keep scanning.
                ++counters.checksumRejects;
                continue;
            }
            const obs::JsonValue *type = body.value().find("type");
            if (type && type->kind() == obs::JsonValue::Kind::String &&
                type->asString() == "header") {
                const obs::JsonValue *schema =
                    body.value().find("schema");
                if (!schema || schema->asString() != kJournalSchema) {
                    return rt::Error(rt::ErrorKind::Config,
                                     "journal schema mismatch")
                        .with("path", path)
                        .with("expected", kJournalSchema);
                }
                continue;
            }
            auto record = recordFromBody(body.value());
            if (!record.ok()) {
                ++counters.checksumRejects;
                continue;
            }
            trackLocked(record.value());
            records.push_back(std::move(record.value()));
            ++counters.recordsRecovered;
            ++lineRecords;
        }
        if (lastSegment)
            segmentRecords = lineRecords;
    }

    if (segmentsOnDisk.empty()) {
        segment = 1;
        segmentsOnDisk.push_back(segment);
        if (auto opened = openSegmentLocked(segment, /*fresh=*/true);
            !opened.ok()) {
            return opened.error();
        }
    } else {
        segment = segmentsOnDisk.back();
        // A last segment emptied by torn-tail repair lost its header
        // too; recreate it so the schema pin survives.
        struct stat seg{};
        bool empty = ::stat(segmentPath(segment).c_str(), &seg) == 0 &&
                     seg.st_size == 0;
        if (auto opened = openSegmentLocked(segment, empty);
            !opened.ok()) {
            return opened.error();
        }
    }
    counters.liveRecords = live.size();
    return records;
}

rt::Expected<void>
Journal::openSegmentLocked(std::uint64_t index, bool fresh)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
    std::string path = segmentPath(index);
    fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
    if (fd < 0)
        return ioError("cannot open journal segment", path);
    if (fresh) {
        std::string line = headerLine() + "\n";
        if (auto written = writeLineLocked(line); !written.ok())
            return written;
        // Segment creation is rare; make the header durable under
        // every policy so the schema pin always survives.
        if (config.fsync != FsyncPolicy::Always) {
            ::fsync(fd);
            ++counters.fsyncs;
        }
        fsyncDir(config.dir);
    }
    return {};
}

rt::Expected<void>
Journal::writeLineLocked(const std::string &line)
{
    std::size_t off = 0;
    while (off < line.size()) {
        ssize_t n = ::write(fd, line.data() + off, line.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return ioError("journal append failed",
                           segmentPath(segment));
        }
        off += static_cast<std::size_t>(n);
    }
    if (config.fsync == FsyncPolicy::Always) {
        ::fsync(fd);
        ++counters.fsyncs;
    }
    return {};
}

void
Journal::trackLocked(const JournalRecord &record)
{
    auto it = std::find_if(live.begin(), live.end(),
                           [&](const JournalRecord &admit) {
                               return admit.key == record.key;
                           });
    if (record.type == JournalRecord::Type::Admit) {
        if (it != live.end())
            *it = record;
        else
            live.push_back(record);
    } else if (it != live.end()) {
        live.erase(it);
    }
    counters.liveRecords = live.size();
}

rt::Expected<void>
Journal::append(const JournalRecord &record)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (fd < 0) {
        return rt::Error(rt::ErrorKind::Config, "journal not open")
            .with("dir", config.dir);
    }
    std::string line = Journal::encode(record);

    if (config.inject && config.inject->truncateWrite()) {
        // A torn write: half the line reaches the file, no newline.
        // From the process's view the write "succeeded" (page cache),
        // so the record still enters the live set and is re-persisted
        // from there at the next compaction; the damage is only
        // observable at the next open(), which contains it via the
        // crc.  The next append leads with '\n' so exactly one record
        // is lost, not two.
        trackLocked(record);
        ++counters.recordsAppended;
        ++segmentRecords;
        std::string torn = line.substr(0, line.size() / 2);
        if (pendingTornTail)
            torn.insert(torn.begin(), '\n');
        FsyncPolicy saved = config.fsync;
        config.fsync = FsyncPolicy::Never; // a torn write never syncs
        auto written = writeLineLocked(torn);
        config.fsync = saved;
        pendingTornTail = true;
        return written;
    }

    std::string out;
    if (pendingTornTail) {
        out += '\n';
        pendingTornTail = false;
    }
    out += line;
    out += '\n';
    if (auto written = writeLineLocked(out); !written.ok())
        return written;
    // Track only after the write landed: an append whose caller was
    // told it failed (handleSubmit rejects the submit) must not linger
    // in the live set, where a later compaction would persist it and a
    // restart would replay a job the client never saw admitted.
    trackLocked(record);
    ++counters.recordsAppended;
    ++segmentRecords;

    // Compact once the segment has accumulated enough retired records
    // to be worth rewriting (a segment that is all live admits would
    // not shrink -- skip until terminals catch up).
    if (segmentRecords >= config.rotateEvery &&
        live.size() < segmentRecords) {
        return rotateLocked();
    }
    return {};
}

rt::Expected<void>
Journal::rotateLocked()
{
    std::uint64_t next = segment + 1;
    std::string path = segmentPath(next);
    std::string tmp = path + ".tmp";
    {
        int out = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (out < 0)
            return ioError("cannot create journal segment", tmp);
        std::string content = headerLine() + "\n";
        for (const JournalRecord &admit : live)
            content += Journal::encode(admit) + "\n";
        std::size_t off = 0;
        while (off < content.size()) {
            ssize_t n = ::write(out, content.data() + off,
                                content.size() - off);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                rt::Error err = ioError("journal compaction failed", tmp);
                ::close(out);
                ::unlink(tmp.c_str());
                return err;
            }
            off += static_cast<std::size_t>(n);
        }
        if (config.fsync != FsyncPolicy::Never) {
            ::fsync(out);
            ++counters.fsyncs;
        }
        ::close(out);
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        rt::Error err = ioError("journal segment rename failed", path);
        ::unlink(tmp.c_str());
        return err;
    }
    if (config.fsync != FsyncPolicy::Never)
        fsyncDir(config.dir);

    // The new segment is durable; the old ones are now garbage.
    for (std::uint64_t old : segmentsOnDisk)
        ::unlink(segmentPath(old).c_str());
    if (config.fsync != FsyncPolicy::Never)
        fsyncDir(config.dir);
    segmentsOnDisk.assign(1, next);

    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
    fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
    if (fd < 0)
        return ioError("cannot reopen journal segment", path);
    segment = next;
    segmentRecords = live.size();
    pendingTornTail = false;
    ++counters.rotations;
    return {};
}

JournalStats
Journal::stats() const
{
    std::lock_guard<std::mutex> lock(mutex);
    JournalStats out = counters;
    out.liveRecords = live.size();
    out.segmentIndex = segment;
    return out;
}

} // namespace dcfb::svc
