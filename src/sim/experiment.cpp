#include "sim/experiment.h"

#include <cmath>
#include <cstdio>
#include <optional>
#include <utility>

#include "rt/error.h"
#include "svc/result_cache.h"

namespace dcfb::sim {

ExperimentGrid::ExperimentGrid(std::vector<Preset> presets_,
                               RunWindows windows_, ConfigHook hook_,
                               bool vl)
    : presets(std::move(presets_)), windows(windows_),
      hook(std::move(hook_)), variableLength(vl)
{
}

void
ExperimentGrid::run()
{
    run(workload::serverWorkloadNames());
}

void
ExperimentGrid::run(const std::vector<std::string> &workload_names)
{
    run(workload_names, 0);
}

void
ExperimentGrid::run(const std::vector<std::string> &workload_names,
                    unsigned jobs_requested)
{
    names = workload_names;

    // The miss-attribution tracer buffers per run on the running thread
    // and merges at close, so a traced grid parallelizes like any other
    // (the merged stream is byte-identical to a serial run's).
    unsigned jobs = exec::resolveJobs(jobs_requested);

    // Scatter phase setup, all on this thread: config hooks and the
    // process-wide defaults (fault plan, jobs) are only read serially,
    // and every cell of a workload shares one immutable cached image.
    struct Cell
    {
        std::string name;
        Preset preset;
        SystemConfig cfg;
    };
    std::vector<Cell> cells;
    cells.reserve(names.size() * presets.size());
    for (const auto &name : names) {
        auto profile = workload::serverProfile(name, variableLength);
        for (Preset preset : presets) {
            SystemConfig cfg = makeConfig(profile, preset);
            if (hook)
                hook(cfg);
            // Key the image on the post-hook profile: hook-tweaked
            // profiles get their own cache entry, untouched ones share.
            cfg.program = workload::ImageCache::global().get(cfg.profile);
            cells.push_back(Cell{name, preset, std::move(cfg)});
        }
    }

    // Scatter/gather: each cell simulates into its own slot (per-cell
    // System, registries, watchdog and fault injector -- nothing shared
    // but the immutable images), then the results are merged in cell
    // order after the barrier so the grid's content is independent of
    // worker interleaving.
    std::vector<std::optional<RunResult>> out(cells.size());
    lastExec = exec::runIndexed(
        "grid", cells.size(), jobs,
        [&](std::size_t i) {
            // Exactly simulate() unless a --cache directory is open.
            out[i] = svc::simulateCached(cells[i].cfg, windows);
            std::fprintf(stderr, "  [grid] %s / %s done\n",
                         cells[i].name.c_str(),
                         presetName(cells[i].preset).c_str());
        },
        [&](std::size_t i) {
            return cells[i].name + "/" + presetName(cells[i].preset);
        });
    exec::ExecLog::push(lastExec);

    for (std::size_t i = 0; i < cells.size(); ++i) {
        results.emplace(std::make_pair(cells[i].name, cells[i].preset),
                        std::move(*out[i]));
    }
}

const RunResult *
ExperimentGrid::tryAt(const std::string &workload_name, Preset preset) const
{
    auto it = results.find(std::make_pair(workload_name, preset));
    return it == results.end() ? nullptr : &it->second;
}

const RunResult &
ExperimentGrid::at(const std::string &workload_name, Preset preset) const
{
    if (const RunResult *res = tryAt(workload_name, preset))
        return *res;
    std::string available;
    for (const auto &kv : results) {
        if (!available.empty())
            available += ", ";
        available += kv.first.first + "/" + presetName(kv.first.second);
    }
    rt::raise(rt::Error(rt::ErrorKind::Result, "no result in the grid")
                  .with("requested",
                        workload_name + "/" + presetName(preset))
                  .with("available",
                        available.empty() ? "(none run)" : available));
}

double
ExperimentGrid::mean(
    Preset preset,
    const std::function<double(const RunResult &)> &metric) const
{
    if (names.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &name : names)
        sum += metric(at(name, preset));
    return sum / static_cast<double>(names.size());
}

double
ExperimentGrid::gmeanSpeedup(Preset design, Preset baseline) const
{
    if (names.empty())
        return 0.0;
    double log_sum = 0.0;
    for (const auto &name : names) {
        double s = speedup(at(name, design), at(name, baseline));
        log_sum += std::log(s > 0 ? s : 1e-9);
    }
    return std::exp(log_sum / static_cast<double>(names.size()));
}

} // namespace dcfb::sim
