#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace dcfb::obs {

JsonValue &
JsonValue::operator[](const std::string &key)
{
    k = Kind::Object;
    for (auto &kv : objectVal) {
        if (kv.first == key)
            return kv.second;
    }
    objectVal.emplace_back(key, JsonValue());
    return objectVal.back().second;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &kv : objectVal) {
        if (kv.first == key)
            return &kv.second;
    }
    return nullptr;
}

std::string
JsonValue::quote(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
    return out;
}

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent <= 0)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent * d), ' ');
    };

    switch (k) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += boolVal ? "true" : "false";
        break;
      case Kind::Uint: {
        char buf[24];
        auto res = std::to_chars(buf, buf + sizeof(buf), uintVal);
        out.append(buf, res.ptr);
        break;
      }
      case Kind::Double: {
        if (!std::isfinite(doubleVal)) {
            out += "null"; // JSON has no inf/nan
            break;
        }
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", doubleVal);
        out += buf;
        break;
      }
      case Kind::String:
        out += quote(stringVal);
        break;
      case Kind::Array: {
        if (arrayVal.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < arrayVal.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            arrayVal[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      }
      case Kind::Object: {
        if (objectVal.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < objectVal.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            out += quote(objectVal[i].first);
            out += indent > 0 ? ": " : ":";
            objectVal[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
      }
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent JSON parser over a string_view. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : s(text) {}

    std::optional<JsonValue>
    document()
    {
        auto v = value();
        if (!v)
            return std::nullopt;
        skipWs();
        if (pos != s.size())
            return std::nullopt; // trailing junk
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r')) {
            ++pos;
        }
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (s.substr(pos, word.size()) != word)
            return false;
        pos += word.size();
        return true;
    }

    std::optional<JsonValue>
    value()
    {
        skipWs();
        if (pos >= s.size())
            return std::nullopt;
        switch (s[pos]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"': {
            auto str = string();
            if (!str)
                return std::nullopt;
            return JsonValue(std::move(*str));
          }
          case 't':
            return literal("true") ? std::optional(JsonValue(true))
                                   : std::nullopt;
          case 'f':
            return literal("false") ? std::optional(JsonValue(false))
                                    : std::nullopt;
          case 'n':
            return literal("null") ? std::optional(JsonValue())
                                   : std::nullopt;
          default:
            return number();
        }
    }

    std::optional<JsonValue>
    object()
    {
        ++pos; // '{'
        JsonValue out = JsonValue::object();
        skipWs();
        if (consume('}'))
            return out;
        while (true) {
            skipWs();
            if (pos >= s.size() || s[pos] != '"')
                return std::nullopt;
            auto key = string();
            if (!key || !consume(':'))
                return std::nullopt;
            auto v = value();
            if (!v)
                return std::nullopt;
            out[*key] = std::move(*v);
            if (consume(','))
                continue;
            if (consume('}'))
                return out;
            return std::nullopt;
        }
    }

    std::optional<JsonValue>
    array()
    {
        ++pos; // '['
        JsonValue out = JsonValue::array();
        skipWs();
        if (consume(']'))
            return out;
        while (true) {
            auto v = value();
            if (!v)
                return std::nullopt;
            out.push(std::move(*v));
            if (consume(','))
                continue;
            if (consume(']'))
                return out;
            return std::nullopt;
        }
    }

    std::optional<std::string>
    string()
    {
        ++pos; // opening quote
        std::string out;
        while (pos < s.size()) {
            char c = s[pos];
            if (c == '"') {
                ++pos;
                return out;
            }
            if (c == '\\') {
                if (pos + 1 >= s.size())
                    return std::nullopt;
                char e = s[pos + 1];
                pos += 2;
                switch (e) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'u': {
                    if (pos + 4 > s.size())
                        return std::nullopt;
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = s[pos + static_cast<std::size_t>(i)];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return std::nullopt;
                    }
                    pos += 4;
                    // Encode the BMP code point as UTF-8 (surrogate
                    // pairs are not needed for our ASCII schemas).
                    if (cp < 0x80) {
                        out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        out += static_cast<char>(0xc0 | (cp >> 6));
                        out += static_cast<char>(0x80 | (cp & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (cp >> 12));
                        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (cp & 0x3f));
                    }
                    break;
                  }
                  default:
                    return std::nullopt;
                }
                continue;
            }
            out += c;
            ++pos;
        }
        return std::nullopt; // unterminated
    }

    std::optional<JsonValue>
    number()
    {
        std::size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        bool integral = true;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-')) {
            if (s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E')
                integral = false;
            ++pos;
        }
        std::string_view tok = s.substr(start, pos - start);
        if (tok.empty() || tok == "-")
            return std::nullopt;
        if (integral && tok[0] != '-') {
            std::uint64_t u = 0;
            auto res = std::from_chars(tok.data(), tok.data() + tok.size(),
                                       u);
            if (res.ec == std::errc() && res.ptr == tok.data() + tok.size())
                return JsonValue(u);
        }
        double d = 0.0;
        auto res = std::from_chars(tok.data(), tok.data() + tok.size(), d);
        if (res.ec != std::errc() || res.ptr != tok.data() + tok.size())
            return std::nullopt;
        return JsonValue(d);
    }

    std::string_view s;
    std::size_t pos = 0;
};

} // namespace

std::optional<JsonValue>
JsonValue::parse(std::string_view text)
{
    return Parser(text).document();
}

} // namespace dcfb::obs
