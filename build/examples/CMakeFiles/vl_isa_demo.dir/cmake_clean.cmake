file(REMOVE_RECURSE
  "CMakeFiles/vl_isa_demo.dir/vl_isa_demo.cpp.o"
  "CMakeFiles/vl_isa_demo.dir/vl_isa_demo.cpp.o.d"
  "vl_isa_demo"
  "vl_isa_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vl_isa_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
