/**
 * @file
 * Main-memory model: 60 ns access latency, 85 GB/s peak bandwidth over
 * four DDR4 channels (Table III).
 *
 * Latency is fixed; bandwidth is modeled by booking channel busy time per
 * 64-byte transfer, so saturating the channels (e.g. with useless
 * prefetches) queues subsequent accesses.
 */

#ifndef DCFB_MEM_MEMORY_H
#define DCFB_MEM_MEMORY_H

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace dcfb::mem {

/** Main-memory configuration (cycles at the 2 GHz core clock). */
struct MemoryConfig
{
    Cycle accessLatency = 120;  //!< 60 ns at 2 GHz
    unsigned channels = 4;
    /** Busy cycles one 64 B block keeps a channel: 85 GB/s total over 4
     *  channels is ~21.25 GB/s each -> 64 B / 21.25 GB/s = 3 ns = 6 cyc. */
    Cycle channelBusyPerBlock = 6;
};

/**
 * Latency + bandwidth model of the DRAM subsystem.
 */
class MemoryModel
{
  public:
    explicit MemoryModel(const MemoryConfig &config) : cfg(config),
        channelFree(config.channels, 0)
    {}

    /**
     * Access the block at @p addr starting at @p now; returns the cycle
     * the block is available at the LLC.
     */
    Cycle
    access(Addr addr, Cycle now)
    {
        unsigned ch = static_cast<unsigned>(blockNumber(addr)) %
            cfg.channels;
        Cycle start = std::max(now, channelFree[ch]);
        channelFree[ch] = start + cfg.channelBusyPerBlock;
        statSet.add("mem_accesses");
        statSet.add("mem_queue_cycles", start - now);
        return start + cfg.accessLatency;
    }

    const StatSet &stats() const { return statSet; }
    StatSet &stats() { return statSet; }

  private:
    MemoryConfig cfg;
    std::vector<Cycle> channelFree;
    StatSet statSet;
};

} // namespace dcfb::mem

#endif // DCFB_MEM_MEMORY_H
