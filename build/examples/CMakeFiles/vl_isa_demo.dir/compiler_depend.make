# Empty compiler generated dependencies file for vl_isa_demo.
# This may be replaced when dependencies are built.
