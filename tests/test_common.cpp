/**
 * @file
 * Unit and property tests for the common layer: address helpers, RNG,
 * bounded queue, saturating counters, stat sets.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/queue.h"
#include "common/rng.h"
#include "common/sat_counter.h"
#include "common/stats.h"
#include "common/types.h"

namespace dcfb {
namespace {

TEST(Types, BlockAlignment)
{
    EXPECT_EQ(blockAlign(0x1000), 0x1000u);
    EXPECT_EQ(blockAlign(0x103f), 0x1000u);
    EXPECT_EQ(blockAlign(0x1040), 0x1040u);
    EXPECT_EQ(blockNumber(0x1040), 0x41u);
    EXPECT_EQ(blockOffset(0x107b), 0x3bu);
}

TEST(Types, InstrSlot)
{
    EXPECT_EQ(instrSlot(0x1000), 0u);
    EXPECT_EQ(instrSlot(0x1004), 1u);
    EXPECT_EQ(instrSlot(0x103c), 15u);
}

TEST(Types, SameBlock)
{
    EXPECT_TRUE(sameBlock(0x1000, 0x103f));
    EXPECT_FALSE(sameBlock(0x103f, 0x1040));
}

TEST(Types, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4096), 12u);
}

TEST(Types, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(65));
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all values hit
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ZipfSkewBiasesTowardZero)
{
    Rng rng(17);
    std::uint64_t low_skewed = 0, low_flat = 0;
    for (int i = 0; i < 20000; ++i) {
        low_skewed += rng.zipf(100, 0.9) < 10;
        low_flat += rng.zipf(100, 0.0) < 10;
    }
    EXPECT_GT(low_skewed, low_flat * 2);
}

TEST(Rng, ZipfStaysInRange)
{
    Rng rng(19);
    for (int i = 0; i < 5000; ++i)
        EXPECT_LT(rng.zipf(37, 0.7), 37u);
}

TEST(BoundedQueue, FifoOrder)
{
    BoundedQueue<int> q(4);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_TRUE(q.push(3));
    EXPECT_EQ(q.front(), 1);
    q.pop();
    EXPECT_EQ(q.front(), 2);
}

TEST(BoundedQueue, RejectsWhenFull)
{
    BoundedQueue<int> q(2);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.push(3));
    EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueue, ReusableAfterDrain)
{
    BoundedQueue<int> q(2);
    q.push(1);
    q.push(2);
    q.pop();
    q.pop();
    EXPECT_TRUE(q.empty());
    EXPECT_TRUE(q.push(5));
    EXPECT_EQ(q.front(), 5);
}

TEST(SatCounter, SaturatesHigh)
{
    SatCounter c(2);
    for (int i = 0; i < 10; ++i)
        c.up();
    EXPECT_EQ(c.raw(), 3u);
    EXPECT_TRUE(c.taken());
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter c(2, 3);
    for (int i = 0; i < 10; ++i)
        c.down();
    EXPECT_EQ(c.raw(), 0u);
    EXPECT_FALSE(c.taken());
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, WeakDetection)
{
    SatCounter c(3, 4); // 3-bit, mid = 4
    EXPECT_TRUE(c.weak());
    c.set(3);
    EXPECT_TRUE(c.weak());
    c.set(7);
    EXPECT_FALSE(c.weak());
}

TEST(SatCounter, TakenThreshold)
{
    SatCounter c(2, 1);
    EXPECT_FALSE(c.taken());
    c.up();
    EXPECT_TRUE(c.taken());
}

TEST(StatSet, AddAndGet)
{
    StatSet s;
    s.add("hits");
    s.add("hits", 4);
    EXPECT_EQ(s.get("hits"), 5u);
    EXPECT_EQ(s.get("absent"), 0u);
}

TEST(StatSet, Ratio)
{
    StatSet s;
    s.add("hits", 3);
    s.add("accesses", 4);
    EXPECT_DOUBLE_EQ(s.ratio("hits", "accesses"), 0.75);
    EXPECT_DOUBLE_EQ(s.ratio("hits", "absent"), 0.0);
}

TEST(StatSet, ResetZeroesEverything)
{
    StatSet s;
    s.add("a", 10);
    s.add("b", 20);
    s.reset();
    EXPECT_EQ(s.get("a"), 0u);
    EXPECT_EQ(s.get("b"), 0u);
    EXPECT_EQ(s.all().size(), 2u); // names survive reset
}

TEST(StatSet, DumpContainsNames)
{
    StatSet s;
    s.add("cycles", 123);
    EXPECT_NE(s.dump().find("cycles = 123"), std::string::npos);
}

} // namespace
} // namespace dcfb
