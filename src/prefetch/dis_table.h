/**
 * @file
 * DisTable: the Dis prefetcher's discontinuity metadata (Section V.B).
 *
 * A direct-mapped, partially-tagged table keyed by block address.  Each
 * entry stores a 4-bit partial tag and the offset of the branch
 * instruction (within the block) that last caused a discontinuity miss:
 * a 4-bit instruction offset on the fixed-length ISA, or a (6-bit
 * wider) byte offset on variable-length ISAs (Section V.D).  The target
 * is never stored — it is recovered by pre-decoding the block, which is
 * the paper's key storage trick.
 *
 * Tagging policy is configurable to reproduce Fig. 12 (tagless vs.
 * 4-bit partial vs. full tags -> overprediction).
 */

#ifndef DCFB_PREFETCH_DIS_TABLE_H
#define DCFB_PREFETCH_DIS_TABLE_H

#include <bit>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "exec/arena.h"

namespace dcfb::prefetch {

/** Tag policies of Fig. 12. */
enum class DisTagPolicy {
    Tagless,
    Partial4, //!< 4-bit partial tag (the paper's choice)
    Full,
};

/** DisTable configuration. */
struct DisTableConfig
{
    std::size_t entries = 4 * 1024; //!< 0 = unlimited (Fig. 11 reference)
    DisTagPolicy tagPolicy = DisTagPolicy::Partial4;
    bool byteOffsets = false; //!< VL-ISA: 6-bit byte offsets
};

/**
 * The discontinuity table.
 */
class DisTable
{
  public:
    explicit DisTable(const DisTableConfig &config = DisTableConfig{},
                      exec::Arena *arena = nullptr)
        : cfg(config),
          table(cfg.entries ? cfg.entries : 0,
                exec::ArenaAlloc<Entry>(arena)),
          cRecords(statSet.lazy("distable_records")),
          cLookups(statSet.lazy("distable_lookups"))
    {
        // Table sizes are powers of two (index() masks), so the tag's
        // "bits above the index" divide becomes a shift.
        if (cfg.entries && std::has_single_bit(cfg.entries))
            tagShift = static_cast<unsigned>(std::countr_zero(cfg.entries));
    }

    /**
     * Record that the branch at @p offset within @p block_addr caused a
     * discontinuity.  @p offset is an instruction slot index (FL) or a
     * byte offset (VL), per configuration.
     */
    void
    record(Addr block_addr, std::uint8_t offset)
    {
        cRecords.add();
        if (unlimited()) {
            dedicated[blockNumber(block_addr)] = offset;
            return;
        }
        Entry &e = table[index(block_addr)];
        e.valid = true;
        e.tag = tagOf(block_addr);
        e.offset = offset;
    }

    /**
     * Look up the discontinuity offset recorded for @p block_addr.
     * Returns nothing on a (tag) miss.  With partial tags an aliasing
     * block with a matching partial tag yields a (possibly wrong) hit;
     * that overprediction is exactly what Fig. 12 measures downstream.
     */
    std::optional<std::uint8_t>
    lookup(Addr block_addr) const
    {
        cLookups.add();
        if (unlimited()) {
            auto it = dedicated.find(blockNumber(block_addr));
            if (it == dedicated.end())
                return std::nullopt;
            return it->second;
        }
        const Entry &e = table[index(block_addr)];
        if (!e.valid)
            return std::nullopt;
        if (cfg.tagPolicy != DisTagPolicy::Tagless &&
            e.tag != tagOf(block_addr)) {
            return std::nullopt;
        }
        return e.offset;
    }

    bool unlimited() const { return cfg.entries == 0; }

    /** Arena bytes this configuration's table wants. */
    static std::size_t
    arenaBytes(const DisTableConfig &config)
    {
        return config.entries * sizeof(Entry);
    }

    /** Storage: offset bits + tag bits per entry (paper: 4+4 = 1 B for
     *  FL, 6+4 = 10 bits for VL, Section V.D). */
    std::uint64_t
    storageBits() const
    {
        unsigned offset_bits = cfg.byteOffsets ? 6 : 4;
        unsigned tag_bits = 0;
        if (cfg.tagPolicy == DisTagPolicy::Partial4)
            tag_bits = 4;
        else if (cfg.tagPolicy == DisTagPolicy::Full)
            tag_bits = 32;
        return cfg.entries * (offset_bits + tag_bits + 1);
    }

    const StatSet &stats() const { return statSet; }
    StatSet &stats() { return statSet; }
    const DisTableConfig &config() const { return cfg; }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint8_t offset = 0;
    };

    std::size_t
    index(Addr block_addr) const
    {
        return static_cast<std::size_t>(blockNumber(block_addr)) &
            (cfg.entries - 1);
    }

    std::uint64_t
    tagOf(Addr block_addr) const
    {
        std::uint64_t above = tagShift ? blockNumber(block_addr) >> *tagShift
                                       : blockNumber(block_addr) /
                (cfg.entries ? cfg.entries : 1);
        switch (cfg.tagPolicy) {
          case DisTagPolicy::Tagless: return 0;
          case DisTagPolicy::Partial4: return above & 0xf;
          case DisTagPolicy::Full: return above;
        }
        return 0;
    }

    DisTableConfig cfg;
    exec::ArenaVector<Entry> table;
    std::unordered_map<Addr, std::uint8_t> dedicated;
    std::optional<unsigned> tagShift; //!< set when entries is pow2
    mutable StatSet statSet;
    mutable obs::LazyCounter cRecords;
    mutable obs::LazyCounter cLookups;
};

} // namespace dcfb::prefetch

#endif // DCFB_PREFETCH_DIS_TABLE_H
