/**
 * @file
 * Figure 3: NL prefetcher's *sequential* miss coverage over a baseline
 * with no prefetcher.  Paper: 63 % on average (NL's poor timeliness
 * leaves 37 % uncovered).
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace dcfb;
    bench::Harness h(argc, argv, "Fig. 3 - NL sequential miss coverage",
                  "average 63%; the remainder is NL's poor timeliness");

    sim::Table table({"workload", "base seq misses", "NL seq misses",
                      "seq coverage"});
    double sum = 0.0;
    auto names = bench::allWorkloads();
    for (const auto &name : names) {
        auto profile = workload::serverProfile(name);
        auto base = sim::simulate(
            sim::makeConfig(profile, sim::Preset::Baseline),
            bench::windows());
        auto nl = sim::simulate(sim::makeConfig(profile, sim::Preset::NL),
                                bench::windows());
        double b = static_cast<double>(base.stat("l1i.l1i_seq_misses"));
        double n = static_cast<double>(nl.stat("l1i.l1i_seq_misses"));
        double cov = b > 0 ? std::max(0.0, 1.0 - n / b) : 0.0;
        sum += cov;
        table.addRow({name, std::to_string(base.stat("l1i.l1i_seq_misses")),
                      std::to_string(nl.stat("l1i.l1i_seq_misses")),
                      sim::Table::pct(cov)});
    }
    table.addRow({"Average", "", "",
                  sim::Table::pct(sum / static_cast<double>(names.size()))});
    h.report(table, "NL sequential miss coverage");
    return 0;
}
