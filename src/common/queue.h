/**
 * @file
 * Fixed-capacity FIFO queue.
 *
 * The paper's prefetch engine uses several small bounded queues (SeqQueue,
 * DisQueue, RLUQueue, the prefetch queue in front of the L1i ports).  This
 * container enforces the capacity: pushes beyond capacity are rejected so
 * the hardware limit is modeled, not papered over.
 */

#ifndef DCFB_COMMON_QUEUE_H
#define DCFB_COMMON_QUEUE_H

#include <cassert>
#include <cstddef>
#include <deque>

namespace dcfb {

/**
 * Bounded FIFO with explicit overflow signaling.
 */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity) : cap(capacity) {}

    /** Append @p value; returns false (dropping it) when full. */
    bool
    push(const T &value)
    {
        if (items.size() >= cap)
            return false;
        items.push_back(value);
        return true;
    }

    /** Front element; queue must be non-empty. */
    const T &
    front() const
    {
        assert(!items.empty());
        return items.front();
    }

    /** Remove the front element; queue must be non-empty. */
    void
    pop()
    {
        assert(!items.empty());
        items.pop_front();
    }

    bool empty() const { return items.empty(); }
    bool full() const { return items.size() >= cap; }
    std::size_t size() const { return items.size(); }
    std::size_t capacity() const { return cap; }
    void clear() { items.clear(); }

    /** Iteration support for draining logic and tests. */
    auto begin() const { return items.begin(); }
    auto end() const { return items.end(); }

  private:
    std::size_t cap;
    std::deque<T> items;
};

} // namespace dcfb

#endif // DCFB_COMMON_QUEUE_H
