#include "obs/trace.h"

#include <cstdio>
#include <fstream>

#include "obs/json.h"

namespace dcfb::obs {

const char *
missClassName(MissClass cls)
{
    switch (cls) {
      case MissClass::Sequential:
        return "seq";
      case MissClass::Discontinuity:
        return "disc";
      case MissClass::Btb:
        return "btb";
      case MissClass::None:
        return "-";
    }
    return "?";
}

const char *
missOutcomeName(MissOutcome outcome)
{
    switch (outcome) {
      case MissOutcome::Covered:
        return "covered";
      case MissOutcome::Late:
        return "late";
      case MissOutcome::Uncovered:
        return "uncovered";
      case MissOutcome::Wasted:
        return "wasted";
    }
    return "?";
}

TraceFormat
traceFormatForPath(const std::string &path)
{
    return path.ends_with(".jsonl") ? TraceFormat::Jsonl
                                    : TraceFormat::ChromeTrace;
}

struct Tracing::State
{
    Config cfg;
    std::ofstream out;
    std::uint64_t written = 0;
    std::uint64_t droppedEvents = 0;
    std::uint64_t runIndex = 0;
    bool firstChromeRecord = true;
    std::string workload = "-";
    std::string design = "-";

    void
    emit(const JsonValue &record)
    {
        if (cfg.format == TraceFormat::Jsonl) {
            out << record.dump() << '\n';
        } else {
            out << (firstChromeRecord ? "\n" : ",\n") << record.dump();
            firstChromeRecord = false;
        }
    }
};

Tracing::State *Tracing::state = nullptr;
bool Tracing::runActive = false;

bool
Tracing::open(const std::string &path)
{
    Config cfg;
    cfg.path = path;
    cfg.format = traceFormatForPath(path);
    return open(cfg);
}

bool
Tracing::open(const Config &config)
{
    close();
    auto *s = new State;
    s->cfg = config;
    s->out.open(config.path, std::ios::out | std::ios::trunc);
    if (!s->out.is_open()) {
        std::fprintf(stderr, "[obs] cannot open trace file %s\n",
                     config.path.c_str());
        delete s;
        return false;
    }
    if (s->cfg.format == TraceFormat::ChromeTrace)
        s->out << "[";
    state = s;
    runActive = false;
    return true;
}

void
Tracing::close()
{
    if (!state)
        return;
    State *s = state;
    // Closing summary record: how complete is the stream?
    JsonValue summary = JsonValue::object();
    if (s->cfg.format == TraceFormat::Jsonl) {
        summary["type"] = "summary";
        summary["events"] = s->written;
        summary["dropped"] = s->droppedEvents;
        s->emit(summary);
    } else {
        summary["name"] = "trace_summary";
        summary["ph"] = "i";
        summary["ts"] = std::uint64_t{0};
        summary["pid"] = s->runIndex;
        summary["tid"] = std::uint64_t{0};
        summary["s"] = "g";
        JsonValue args = JsonValue::object();
        args["events"] = s->written;
        args["dropped"] = s->droppedEvents;
        summary["args"] = std::move(args);
        s->emit(summary);
        s->out << "\n]\n";
    }
    s->out.close();
    state = nullptr;
    runActive = false;
    delete s;
}

void
Tracing::beginRun(const std::string &workload, const std::string &design)
{
    if (!state)
        return;
    State *s = state;
    ++s->runIndex;
    s->workload = workload;
    s->design = design;
    JsonValue rec = JsonValue::object();
    if (s->cfg.format == TraceFormat::Jsonl) {
        rec["type"] = "run";
        rec["run"] = s->runIndex;
        rec["workload"] = workload;
        rec["design"] = design;
    } else {
        // Chrome metadata event naming the per-run "process".
        rec["name"] = "process_name";
        rec["ph"] = "M";
        rec["pid"] = s->runIndex;
        rec["tid"] = std::uint64_t{0};
        JsonValue args = JsonValue::object();
        args["name"] = workload + " / " + design;
        rec["args"] = std::move(args);
    }
    s->emit(rec);
    runActive = true;
}

void
Tracing::endRun()
{
    runActive = false;
}

void
Tracing::record(const char *unit, Cycle cycle, Addr addr, MissClass cls,
                MissOutcome outcome)
{
    if (!enabled())
        return;
    State *s = state;
    if (s->written >= s->cfg.maxEvents) {
        ++s->droppedEvents;
        return;
    }
    ++s->written;

    char addrBuf[24];
    std::snprintf(addrBuf, sizeof(addrBuf), "0x%llx",
                  static_cast<unsigned long long>(addr));

    JsonValue rec = JsonValue::object();
    if (s->cfg.format == TraceFormat::Jsonl) {
        rec["type"] = "miss";
        rec["run"] = s->runIndex;
        rec["cycle"] = cycle;
        rec["unit"] = unit;
        rec["addr"] = addrBuf;
        rec["class"] = missClassName(cls);
        rec["outcome"] = missOutcomeName(outcome);
    } else {
        rec["name"] =
            std::string(unit) + "." + missOutcomeName(outcome);
        rec["ph"] = "i";
        rec["ts"] = cycle;
        rec["pid"] = s->runIndex;
        rec["tid"] = std::uint64_t{0};
        rec["s"] = "t";
        JsonValue args = JsonValue::object();
        args["addr"] = addrBuf;
        args["class"] = missClassName(cls);
        args["outcome"] = missOutcomeName(outcome);
        rec["args"] = std::move(args);
    }
    s->emit(rec);
}

std::uint64_t
Tracing::emitted()
{
    return state ? state->written : 0;
}

std::uint64_t
Tracing::dropped()
{
    return state ? state->droppedEvents : 0;
}

} // namespace dcfb::obs
