# Empty compiler generated dependencies file for fig12_tagging.
# This may be replaced when dependencies are built.
