#include "svc/fingerprint.h"

#include <cstdint>

#include "rt/faults.h"
#include "workload/profiles.h"

namespace dcfb::svc {

namespace {

obs::JsonValue
u(std::uint64_t v)
{
    return obs::JsonValue(v);
}

} // namespace

obs::JsonValue
fingerprint(const sim::SystemConfig &c, const sim::RunWindows &w)
{
    obs::JsonValue fp = obs::JsonValue::object();
    fp["schema"] = kCacheSchema;
    // The profile key already covers every program-shaping knob
    // (including the VL-ISA flavour and the build seed).
    fp["profile"] = workload::profileKey(c.profile);
    fp["preset"] = sim::presetName(c.preset);

    obs::JsonValue btb = obs::JsonValue::object();
    btb["entries"] = u(c.btbEntries);
    btb["assoc"] = u(c.btbAssoc);
    btb["boomerang_entries"] = u(c.boomerangBtbEntries);
    btb["ubtb_entries"] = u(c.shotgunBtb.ubtbEntries);
    btb["ubtb_assoc"] = u(c.shotgunBtb.ubtbAssoc);
    btb["cbtb_entries"] = u(c.shotgunBtb.cbtbEntries);
    btb["cbtb_assoc"] = u(c.shotgunBtb.cbtbAssoc);
    btb["rib_entries"] = u(c.shotgunBtb.ribEntries);
    btb["rib_assoc"] = u(c.shotgunBtb.ribAssoc);
    fp["btb"] = std::move(btb);

    obs::JsonValue sn4l = obs::JsonValue::object();
    sn4l["selective"] = c.sn4l.selective;
    sn4l["dis"] = c.sn4l.enableDis;
    sn4l["btb_prefetch"] = c.sn4l.enableBtbPrefetch;
    sn4l["proactive"] = c.sn4l.proactive;
    sn4l["seq_depth"] = u(c.sn4l.seqDepth);
    sn4l["chain_depth"] = u(c.sn4l.chainDepthLimit);
    sn4l["sn1l_tails"] = c.sn4l.sn1lTails;
    sn4l["seq_entries"] = u(c.sn4l.seqTableEntries);
    sn4l["dis_entries"] = u(c.sn4l.disTable.entries);
    sn4l["dis_tag_policy"] = u(static_cast<unsigned>(c.sn4l.disTable.tagPolicy));
    sn4l["dis_byte_offsets"] = c.sn4l.disTable.byteOffsets;
    sn4l["queue_entries"] = u(c.sn4l.queueEntries);
    sn4l["rlu_entries"] = u(c.sn4l.rluEntries);
    sn4l["btb_pb_entries"] = u(c.sn4l.btbPbEntries);
    sn4l["btb_pb_assoc"] = u(c.sn4l.btbPbAssoc);
    sn4l["drain_per_cycle"] = u(c.sn4l.drainPerCycle);
    fp["sn4l"] = std::move(sn4l);

    obs::JsonValue conf = obs::JsonValue::object();
    conf["history"] = u(c.confluence.historyEntries);
    conf["index"] = u(c.confluence.indexEntries);
    conf["degree"] = u(c.confluence.streamDegree);
    conf["lookahead"] = u(c.confluence.lookahead);
    fp["confluence"] = std::move(conf);

    obs::JsonValue fdip = obs::JsonValue::object();
    fdip["ftq_depth"] = u(c.fdip.ftqDepth);
    fdip["ahead"] = u(c.fdip.prefetchAhead);
    fdip["queue_entries"] = u(c.fdip.queueEntries);
    fdip["issues_per_cycle"] = u(c.fdip.issuesPerCycle);
    fdip["recent_entries"] = u(c.fdip.recentEntries);
    fp["fdip"] = std::move(fdip);

    obs::JsonValue mbtb = obs::JsonValue::object();
    mbtb["entries"] = u(c.microBtb.entries);
    mbtb["assoc"] = u(c.microBtb.assoc);
    mbtb["fill_latency"] = u(c.microBtb.fillLatency);
    fp["micro_btb"] = std::move(mbtb);

    obs::JsonValue l1i = obs::JsonValue::object();
    l1i["bytes"] = u(c.l1i.capacityBytes);
    l1i["assoc"] = u(c.l1i.assoc);
    l1i["hit_latency"] = u(c.l1i.hitLatency);
    l1i["mshrs"] = u(c.l1i.mshrs);
    l1i["pf_buffer"] = c.l1i.usePrefetchBuffer;
    l1i["pf_buffer_entries"] = u(c.l1i.prefetchBufferEntries);
    l1i["fetch_footprints"] = c.l1i.fetchFootprints;
    fp["l1i"] = std::move(l1i);

    obs::JsonValue l1d = obs::JsonValue::object();
    l1d["bytes"] = u(c.l1d.capacityBytes);
    l1d["assoc"] = u(c.l1d.assoc);
    l1d["hit_latency"] = u(c.l1d.hitLatency);
    fp["l1d"] = std::move(l1d);

    obs::JsonValue llc = obs::JsonValue::object();
    llc["bytes"] = u(c.llc.capacityBytes);
    llc["assoc"] = u(c.llc.assoc);
    llc["banks"] = u(c.llc.banks);
    llc["latency"] = u(c.llc.accessLatency);
    llc["reply_flits"] = u(c.llc.replyFlits);
    llc["request_flits"] = u(c.llc.requestFlits);
    llc["dvllc"] = c.llc.dvllc;
    llc["bf_slots"] = u(c.llc.bfSlotsPerSet);
    llc["branches_per_bf"] = u(c.llc.branchesPerBf);
    fp["llc"] = std::move(llc);

    obs::JsonValue memory = obs::JsonValue::object();
    memory["latency"] = u(c.memory.accessLatency);
    memory["channels"] = u(c.memory.channels);
    memory["busy_per_block"] = u(c.memory.channelBusyPerBlock);
    fp["memory"] = std::move(memory);

    obs::JsonValue mesh = obs::JsonValue::object();
    mesh["dim"] = u(c.mesh.dim);
    mesh["router_cycles"] = u(c.mesh.routerCycles);
    mesh["link_cycles"] = u(c.mesh.linkCycles);
    mesh["bg_utilization"] = c.mesh.bgUtilization;
    mesh["seed"] = u(c.mesh.seed);
    fp["mesh"] = std::move(mesh);

    obs::JsonValue backend = obs::JsonValue::object();
    backend["dispatch"] = u(c.backend.dispatchWidth);
    backend["retire"] = u(c.backend.retireWidth);
    backend["rob"] = u(c.backend.robEntries);
    backend["depth"] = u(c.backend.pipelineDepth);
    backend["alu_latency"] = u(c.backend.aluLatency);
    fp["backend"] = std::move(backend);

    obs::JsonValue fetch = obs::JsonValue::object();
    fetch["width"] = u(c.fetch.fetchWidth);
    fetch["buffer"] = u(c.fetch.fetchBufferEntries);
    fetch["stages"] = u(c.fetch.frontendStages);
    fetch["decode_redirect"] = u(c.fetch.decodeRedirectPenalty);
    fetch["exec_redirect"] = u(c.fetch.execRedirectPenalty);
    fetch["predecode_latency"] = u(c.fetch.predecodeLatency);
    fetch["ftq"] = u(c.fetch.ftqEntries);
    fetch["perfect_l1i"] = c.fetch.perfectL1i;
    fetch["perfect_btb"] = c.fetch.perfectBtb;
    fp["fetch"] = std::move(fetch);

    fp["core_tile"] = u(c.coreTile);
    fp["run_seed"] = u(c.runSeed);
    fp["functional_warm"] = u(c.functionalWarmInstrs);
    // The canonical spec string covers kind/rate/cycles/seed; an
    // inactive plan renders as "none" so injection-off runs share keys.
    fp["faults"] = rt::faultPlanSpec(c.faults);

    obs::JsonValue windows = obs::JsonValue::object();
    windows["warm"] = u(w.warm);
    windows["measure"] = u(w.measure);
    fp["windows"] = std::move(windows);
    return fp;
}

std::uint64_t
fnv1a64(const std::string &text)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char ch : text) {
        h ^= ch;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
fnv1aHex(const std::string &text)
{
    std::uint64_t h = fnv1a64(text);
    char buf[17];
    static const char *digits = "0123456789abcdef";
    for (int i = 15; i >= 0; --i) {
        buf[i] = digits[h & 0xf];
        h >>= 4;
    }
    buf[16] = '\0';
    return std::string(buf, 16);
}

std::string
cacheKey(const sim::SystemConfig &config, const sim::RunWindows &windows)
{
    return fnv1aHex(fingerprint(config, windows).dump());
}

} // namespace dcfb::svc
