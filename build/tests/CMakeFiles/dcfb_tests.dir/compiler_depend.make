# Empty compiler generated dependencies file for dcfb_tests.
# This may be replaced when dependencies are built.
