/**
 * @file
 * Figure 12 (+ Section VII.C): DisTable overprediction under tagless,
 * 4-bit partial, and full tags, plus the SeqTable conflict statistics
 * (paper: 28 % conflicts yet 92 % correct predictions).
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace dcfb;
    bench::Harness h(argc, argv, "Fig. 12 - DisTable tagging policy overprediction",
                  "tagless >> 4-bit partial ~ full tag");

    const std::pair<const char *, prefetch::DisTagPolicy> policies[] = {
        {"tagless", prefetch::DisTagPolicy::Tagless},
        {"4-bit partial", prefetch::DisTagPolicy::Partial4},
        {"full tag", prefetch::DisTagPolicy::Full},
    };

    sim::Table table({"policy", "DisTable hits", "overpredictions",
                      "overprediction rate"});
    for (const auto &[label, policy] : policies) {
        std::uint64_t hits = 0, wrong = 0;
        for (const auto &name : bench::allWorkloads()) {
            auto cfg = sim::makeConfig(workload::serverProfile(name),
                                       sim::Preset::SN4LDis);
            cfg.sn4l.disTable.tagPolicy = policy;
            auto res = sim::simulate(cfg, bench::windows());
            std::uint64_t h = res.stat("pf.dis_candidates") +
                res.stat("pf.dis_replay_not_branch") +
                res.stat("pf.dis_replay_no_target");
            hits += h;
            wrong += res.stat("pf.dis_replay_not_branch");
        }
        double rate = hits ? static_cast<double>(wrong) /
                static_cast<double>(hits)
                           : 0.0;
        table.addRow({label, std::to_string(hits), std::to_string(wrong),
                      sim::Table::pct(rate, 2)});
    }
    h.report(table, "DisTable overprediction by tagging policy");

    // Section VII.C companion: SeqTable conflict behaviour.
    std::uint64_t writes = 0, conflicts = 0;
    for (const auto &name : bench::allWorkloads()) {
        auto cfg = sim::makeConfig(workload::serverProfile(name),
                                   sim::Preset::SN4L);
        auto res = sim::simulate(cfg, bench::windows());
        writes += res.stat("pf.seqtable_writes");
        conflicts += res.stat("pf.seqtable_conflicts");
    }
    sim::Table seq({"SeqTable writes", "conflicts", "conflict ratio"});
    seq.addRow({std::to_string(writes), std::to_string(conflicts),
                sim::Table::pct(writes ? static_cast<double>(conflicts) /
                                        static_cast<double>(writes)
                                       : 0.0)});
    h.report(seq, "Section VII.C - SeqTable conflict ratio (paper: 28%)");
    return 0;
}
