file(REMOVE_RECURSE
  "CMakeFiles/fig07_disc_predictability.dir/fig07_disc_predictability.cpp.o"
  "CMakeFiles/fig07_disc_predictability.dir/fig07_disc_predictability.cpp.o.d"
  "fig07_disc_predictability"
  "fig07_disc_predictability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_disc_predictability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
