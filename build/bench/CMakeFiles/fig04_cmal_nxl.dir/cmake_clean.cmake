file(REMOVE_RECURSE
  "CMakeFiles/fig04_cmal_nxl.dir/fig04_cmal_nxl.cpp.o"
  "CMakeFiles/fig04_cmal_nxl.dir/fig04_cmal_nxl.cpp.o.d"
  "fig04_cmal_nxl"
  "fig04_cmal_nxl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_cmal_nxl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
