/**
 * @file
 * Fixed-capacity time-series ring for the live metrics plane.
 *
 * A Timeseries holds a small set of named columns (gauges: queue
 * depth, jobs in flight, cache hit rate, pool occupancy, cells/s) and
 * a bounded ring of samples; each sample is one timestamp plus one
 * value per column.  The daemon's sampler thread push()es a snapshot
 * every `--metrics-interval-ms`, and the `metrics` op serializes the
 * ring so `dcfb-client metrics --watch` can render recent history
 * without the daemon ever growing unbounded.
 *
 * Thread-safe (one internal mutex); this is a control-plane structure
 * sampled a few times a second, never a simulation hot path.
 */

#ifndef DCFB_OBS_TIMESERIES_H
#define DCFB_OBS_TIMESERIES_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"

namespace dcfb::obs {

class Timeseries
{
  public:
    struct Sample
    {
        std::uint64_t tMs = 0; //!< sampler-relative timestamp
        std::vector<double> values;
    };

    explicit Timeseries(std::size_t capacity_ = 512);

    /** Register a column; returns its index into Sample::values. */
    std::size_t addSeries(std::string name);

    std::vector<std::string> names() const;
    std::size_t capacity() const { return cap; }

    /** Append one sample, evicting the oldest at capacity.  Missing
     *  trailing values read as 0. */
    void push(std::uint64_t t_ms, std::vector<double> values);

    /** Samples in arrival order, oldest first. */
    std::vector<Sample> snapshot() const;

    std::size_t size() const;

    /** {"names": [...], "samples": [{"t_ms": ..., "v": [...]}]} */
    JsonValue toJson() const;

  private:
    mutable std::mutex mutex;
    std::size_t cap;
    std::vector<std::string> columns;
    std::vector<Sample> ring; //!< circular once full
    std::size_t head = 0;     //!< next write position
    std::size_t count = 0;
};

} // namespace dcfb::obs

#endif // DCFB_OBS_TIMESERIES_H
