file(REMOVE_RECURSE
  "libdcfb.a"
)
