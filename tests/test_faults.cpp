/**
 * @file
 * Fault-injection suite: under every fault kind the simulation must
 * degrade *gracefully* -- the run completes, IPC drops, stat identities
 * stay conserved, and nothing crashes or hangs.  Also covers the
 * end-to-end failure path: invariant violations and watchdog trips
 * abort trySimulate() with a typed error carrying a parseable
 * "dcfb-snapshot-v1" machine-state snapshot.
 *
 * Suite names start with "Fault" so CI can run them as a separate ctest
 * entry (dcfb_fault_tests) with its own timeout.
 */

#include <gtest/gtest.h>

#include "obs/json.h"
#include "rt/faults.h"
#include "sim/simulator.h"
#include "workload/profiles.h"

namespace dcfb::sim {
namespace {

RunWindows
fastWindows()
{
    return RunWindows{40000, 60000};
}

SystemConfig
faultConfig(Preset preset, const std::string &spec)
{
    SystemConfig cfg =
        makeConfig(workload::serverProfile("Web (Apache)"), preset);
    cfg.functionalWarmInstrs = 400000;
    if (!spec.empty())
        cfg.faults = rt::parseFaultPlan(spec).value();
    else
        cfg.faults = rt::FaultPlan{};
    return cfg;
}

/** One cached clean run to compare every fault kind against. */
const RunResult &
cleanRun()
{
    static RunResult res =
        simulate(faultConfig(Preset::SN4LDisBtb, ""), fastWindows());
    return res;
}

/** The stat identities every run must keep, faulted or not. */
void
expectConserved(const RunResult &res)
{
    EXPECT_EQ(res.stat("l1i.l1i_hits") + res.stat("l1i.l1i_misses"),
              res.stat("l1i.l1i_accesses"));
    EXPECT_EQ(res.stat("l1i.l1i_seq_misses") +
                  res.stat("l1i.l1i_disc_misses"),
              res.stat("l1i.l1i_misses"));
    EXPECT_GT(res.instructions, 1000u);
    EXPECT_GT(res.ipc(), 0.05);
}

TEST(FaultInjection, DropDegradesGracefully)
{
    auto res = trySimulate(faultConfig(Preset::SN4LDisBtb,
                                       "drop:rate=0.5,seed=2"),
                           fastWindows());
    ASSERT_TRUE(res.ok()) << res.error().message;
    const RunResult &r = res.value();
    expectConserved(r);
    EXPECT_GT(r.stat("rt.faults_dropped"), 0u);
    // Dropped prefetch fills surface as extra demand misses later.
    EXPECT_GE(r.stat("l1i.l1i_misses"), cleanRun().stat("l1i.l1i_misses"));
    EXPECT_LT(r.ipc(), cleanRun().ipc());
}

TEST(FaultInjection, DelayDegradesGracefully)
{
    auto res = trySimulate(faultConfig(Preset::SN4LDisBtb,
                                       "delay:cycles=300,rate=0.5,seed=2"),
                           fastWindows());
    ASSERT_TRUE(res.ok()) << res.error().message;
    const RunResult &r = res.value();
    expectConserved(r);
    EXPECT_GT(r.stat("rt.faults_delayed"), 0u);
    EXPECT_EQ(r.stat("rt.faults_delay_cycles"),
              r.stat("rt.faults_delayed") * 300);
    EXPECT_LT(r.ipc(), cleanRun().ipc());
}

TEST(FaultInjection, CorruptDegradesGracefully)
{
    auto res = trySimulate(faultConfig(Preset::SN4LDisBtb,
                                       "corrupt:rate=0.5,seed=2"),
                           fastWindows());
    ASSERT_TRUE(res.ok()) << res.error().message;
    const RunResult &r = res.value();
    expectConserved(r);
    EXPECT_GT(r.stat("rt.faults_corrupted"), 0u);
    // Lying predecode output poisons prefetches; it must never help.
    EXPECT_LE(r.ipc(), cleanRun().ipc() * 1.005);
}

TEST(FaultInjection, BackpressureDegradesGracefully)
{
    auto res = trySimulate(faultConfig(Preset::SN4LDisBtb,
                                       "backpressure:rate=0.75,seed=2"),
                           fastWindows());
    ASSERT_TRUE(res.ok()) << res.error().message;
    const RunResult &r = res.value();
    expectConserved(r);
    EXPECT_GT(r.stat("rt.faults_backpressure"), 0u);
    EXPECT_LE(r.ipc(), cleanRun().ipc() * 1.005);
}

TEST(FaultInjection, ReplayIsBitForBitDeterministic)
{
    auto cfg = faultConfig(Preset::SN4LDisBtb, "drop:rate=0.5,seed=2");
    auto a = simulate(cfg, fastWindows());
    auto b = simulate(cfg, fastWindows());
    EXPECT_EQ(a, b);
}

TEST(FaultInjection, InjectorSeedChangesTheFaultPattern)
{
    auto a = simulate(faultConfig(Preset::SN4LDisBtb,
                                  "drop:rate=0.5,seed=1"),
                      fastWindows());
    auto b = simulate(faultConfig(Preset::SN4LDisBtb,
                                  "drop:rate=0.5,seed=2"),
                      fastWindows());
    EXPECT_NE(a, b);
}

TEST(FaultInjection, InactivePlansAreBitIdenticalToOff)
{
    // rate=0 and kind=none must not even register fault counters, so
    // the whole RunResult compares equal to a run without any plan.
    auto off = simulate(faultConfig(Preset::SN4LDisBtb, ""),
                        fastWindows());
    auto zero = simulate(faultConfig(Preset::SN4LDisBtb, "drop:rate=0"),
                         fastWindows());
    auto none = simulate(faultConfig(Preset::SN4LDisBtb, "none"),
                         fastWindows());
    EXPECT_EQ(off, zero);
    EXPECT_EQ(off, none);
    EXPECT_EQ(off.stats.count("rt.faults_dropped"), 0u);
}

TEST(FaultInjection, FaultCountersOnlyExistUnderInjection)
{
    auto faulted = simulate(faultConfig(Preset::SN4LDisBtb,
                                        "drop:rate=0.5,seed=2"),
                            fastWindows());
    EXPECT_EQ(faulted.stats.count("rt.faults_dropped"), 1u);
    EXPECT_EQ(cleanRun().stats.count("rt.faults_dropped"), 0u);
}

TEST(FaultInjection, DecoupledEnginesSurviveFaults)
{
    // Boomerang/Shotgun exercise the FTQ invariants while faults hit
    // the shared L1i path underneath them.
    for (Preset preset : {Preset::Boomerang, Preset::Shotgun}) {
        auto res = trySimulate(
            faultConfig(preset, "delay:cycles=200,rate=0.25,seed=3"),
            fastWindows());
        ASSERT_TRUE(res.ok()) << res.error().render();
        EXPECT_GT(res.value().ipc(), 0.05);
        EXPECT_GT(res.value().stat("rt.faults_delayed"), 0u);
    }
}

TEST(FaultInjection, CompetitorPresetsSurviveEveryFaultKind)
{
    // FDIP's prefetch path and the micro BTB's promote path both ride
    // the faulted L1i/memory machinery; every fault kind must degrade
    // them gracefully, never wedge them.
    const char *specs[] = {
        "drop:rate=0.5,seed=2",
        "delay:cycles=200,rate=0.25,seed=3",
        "corrupt:rate=0.5,seed=2",
    };
    for (Preset preset : {Preset::Fdip, Preset::MicroBtb}) {
        for (const char *spec : specs) {
            auto res =
                trySimulate(faultConfig(preset, spec), fastWindows());
            ASSERT_TRUE(res.ok())
                << presetName(preset) << "/" << spec << ": "
                << res.error().render();
            expectConserved(res.value());
        }
    }
}

TEST(FaultInjection, CompetitorPresetsOffParityIsBitIdentical)
{
    // The injection machinery must be invisible when inert: for the new
    // presets too, no plan, an explicit "none" and a zero-rate plan all
    // produce the same RunResult bytes.
    for (Preset preset : {Preset::Fdip, Preset::MicroBtb}) {
        auto off = simulate(faultConfig(preset, ""), fastWindows());
        auto zero =
            simulate(faultConfig(preset, "drop:rate=0"), fastWindows());
        auto none = simulate(faultConfig(preset, "none"), fastWindows());
        EXPECT_EQ(off, zero) << presetName(preset);
        EXPECT_EQ(off, none) << presetName(preset);
        EXPECT_EQ(off.stats.count("rt.faults_dropped"), 0u)
            << presetName(preset);
    }
}

/** Find @p key in an error's context; nullptr when absent. */
const std::string *
contextValue(const rt::Error &err, const std::string &key)
{
    for (const auto &kv : err.context) {
        if (kv.first == key)
            return &kv.second;
    }
    return nullptr;
}

TEST(FaultIntegrity, InvariantViolationAbortsWithSnapshot)
{
    // A 1-cycle miss-resolution bound turns every in-flight miss into a
    // "leak": the sweep must abort the run with a typed error.
    auto cfg = faultConfig(Preset::Baseline, "");
    cfg.integrity.missResolutionBound = 1;
    cfg.integrity.sweepInterval = 64;
    auto res = trySimulate(cfg, fastWindows());
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().kind, rt::ErrorKind::Invariant);
    EXPECT_NE(res.error().render().find("l1i.miss_resolution"),
              std::string::npos);

    const std::string *snap = contextValue(res.error(), "snapshot");
    ASSERT_NE(snap, nullptr);
    auto doc = obs::JsonValue::parse(*snap);
    ASSERT_TRUE(doc.has_value());
    ASSERT_NE(doc->find("schema"), nullptr);
    EXPECT_EQ(doc->find("schema")->asString(), "dcfb-snapshot-v1");
    ASSERT_NE(doc->find("mshrs"), nullptr);
    EXPECT_GT(doc->find("mshrs")->size(), 0u);
    EXPECT_NE(doc->find("cycle"), nullptr);
    EXPECT_NE(doc->find("retired"), nullptr);
}

TEST(FaultIntegrity, WatchdogTripsOnAnAbsurdWindow)
{
    // A 2-cycle no-progress window trips on the first real L1i miss;
    // the error must carry the snapshot and name the stalled signal.
    auto cfg = faultConfig(Preset::Baseline, "");
    cfg.integrity.watchdogWindow = 2;
    cfg.integrity.sweepInterval = 1;
    auto res = trySimulate(cfg, fastWindows());
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().kind, rt::ErrorKind::Watchdog);
    const std::string *snap = contextValue(res.error(), "snapshot");
    ASSERT_NE(snap, nullptr);
    auto doc = obs::JsonValue::parse(*snap);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("schema")->asString(), "dcfb-snapshot-v1");
}

TEST(FaultIntegrity, DisablingIntegrityKeepsResultsIdentical)
{
    // The integrity layer is observability: sweeps on or off, the
    // simulated machine must produce the same numbers.
    auto on = simulate(faultConfig(Preset::SN4LDisBtb, ""),
                       fastWindows());
    auto cfg = faultConfig(Preset::SN4LDisBtb, "");
    cfg.integrity.invariants = false;
    cfg.integrity.watchdog = false;
    auto off = simulate(cfg, fastWindows());
    EXPECT_EQ(on, off);
}

} // namespace
} // namespace dcfb::sim
